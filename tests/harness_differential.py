"""Reusable cross-engine differential harness for the batch-GCD engines.

The paper's verdict ("this modulus shares a factor with the corpus") must
not depend on which engine computed it.  This module gives every suite
the same two building blocks:

- **seeded corpus generators** for each pathology family the real corpora
  contain — weak-prime pools, byte-identical duplicates, prime powers,
  k-prime cliques (the Section 3.3.2 IBM shape), Fermat-close prime
  pairs, and a mixed blend — each a pure function of its ``Random``, so a
  failing case reproduces from the parametrize id alone;
- an **engine-matrix runner** (:func:`assert_engine_parity`) that runs a
  corpus through all eight engines and asserts the equality contracts.

Equality contracts (what "parity" means, precisely):

- *flags* (``divisor > 1``) are identical across all eight engines for
  every modulus — the verdict the paper's pipeline consumes;
- *divisors* are byte-identical within each engine **family**.  The
  ``exact`` family (naive, classic, incremental) reports full shared
  multiplicity; the ``clustered`` family (both clustered schedulers,
  in-process and pooled, plus the all-to-all engine at ``shards == k``)
  reports the k-subset decomposition's divisor, which on non-squarefree
  corpora may be a proper divisor of the exact one (see
  :mod:`repro.core.clustered`).  Within a family there is no such
  freedom: any difference is a bug;
- *factor sets* (:meth:`~repro.core.results.BatchGcdResult.recovered_primes`)
  are identical across all eight engines: whatever multiplicity an
  engine reports, resolving it must recover the same primes.
"""

import math
import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.alltoall import AllToAllBatchGcd, alltoall_batch_gcd
from repro.core.batchgcd import batch_gcd
from repro.core.clustered import ClusteredBatchGcd
from repro.core.incremental import IncrementalBatchGcd
from repro.core.naive import naive_pairwise_gcd
from repro.core.results import BatchGcdResult
from repro.crypto.primes import generate_prime
from repro.numt.primality import next_prime

EXACT = "exact"
CLUSTERED = "clustered"


@dataclass(frozen=True)
class EngineSpec:
    """One engine of the differential matrix.

    Attributes:
        label: stable name used in assertion messages and parametrize ids.
        family: divisor-equality class (:data:`EXACT` or :data:`CLUSTERED`).
        run: ``moduli -> BatchGcdResult``.
    """

    label: str
    family: str
    run: Callable[[Sequence[int]], BatchGcdResult]


def engine_matrix(k: int = 3, processes: int = 2) -> list[EngineSpec]:
    """All eight engines, the k-subset family pinned to the same ``k``.

    The all-to-all engine runs at ``shards=k`` so its round-robin
    partition matches the clustered engines' subsets exactly — the
    precondition for byte-identical divisors within the family.
    """
    return [
        EngineSpec("naive", EXACT, naive_pairwise_gcd),
        EngineSpec("classic", EXACT, batch_gcd),
        EngineSpec(
            "incremental", EXACT, lambda m: IncrementalBatchGcd().run(m)
        ),
        EngineSpec(
            "streaming",
            CLUSTERED,
            lambda m: ClusteredBatchGcd(k=k, scheduler="streaming").run(m),
        ),
        EngineSpec(
            "fanout",
            CLUSTERED,
            lambda m: ClusteredBatchGcd(k=k, scheduler="fanout").run(m),
        ),
        EngineSpec(
            "streaming-pool",
            CLUSTERED,
            lambda m: ClusteredBatchGcd(
                k=k, processes=processes, scheduler="streaming"
            ).run(m),
        ),
        EngineSpec(
            "fanout-pool",
            CLUSTERED,
            lambda m: ClusteredBatchGcd(
                k=k, processes=processes, scheduler="fanout"
            ).run(m),
        ),
        EngineSpec(
            "alltoall", CLUSTERED, lambda m: alltoall_batch_gcd(m, shards=k)
        ),
    ]


def flags(result: BatchGcdResult) -> list[bool]:
    """The vulnerable/clean verdict per modulus."""
    return [d > 1 for d in result.divisors]


def assert_engine_parity(
    moduli: Sequence[int], k: int = 3, processes: int = 2
) -> dict[str, BatchGcdResult]:
    """Run the engine matrix over a corpus and assert the parity contracts.

    Returns the per-engine results (by label) so callers can layer
    corpus-specific assertions on top of the generic ones.
    """
    results: dict[str, BatchGcdResult] = {}
    specs = engine_matrix(k=k, processes=processes)
    for spec in specs:
        results[spec.label] = spec.run(moduli)

    reference_flags = flags(results[specs[0].label])
    family_divisors: dict[str, tuple[str, list[int]]] = {}
    reference_primes: set[int] | None = None
    for spec in specs:
        result = results[spec.label]
        assert flags(result) == reference_flags, (
            f"{spec.label} flags diverge from {specs[0].label}: "
            f"{flags(result)} != {reference_flags}"
        )
        anchor = family_divisors.setdefault(
            spec.family, (spec.label, result.divisors)
        )
        assert result.divisors == anchor[1], (
            f"{spec.label} divisors diverge from {anchor[0]} "
            f"within family {spec.family!r}"
        )
        primes = result.recovered_primes()
        if reference_primes is None:
            reference_primes = primes
        assert primes == reference_primes, (
            f"{spec.label} recovers factor set {sorted(primes)} != "
            f"{sorted(reference_primes)} ({specs[0].label})"
        )
    return results


def assert_alltoall_parity(
    moduli: Sequence[int], shards: int, processes: int | None = None
) -> BatchGcdResult:
    """The acceptance contract: alltoall(shards=N) ≡ clustered(k=N), byte for byte.

    Asserts divisor-list equality *and* full factorization equality
    against the streaming clustered engine at the matching subset count,
    and returns the all-to-all result.
    """
    reference = ClusteredBatchGcd(k=shards, scheduler="streaming").run(moduli)
    result = AllToAllBatchGcd(shards=shards, processes=processes).run(moduli)
    assert result.divisors == reference.divisors, (
        f"alltoall(shards={shards}) divisors diverge from "
        f"clustered(k={shards})"
    )
    assert result.resolve() == reference.resolve(), (
        f"alltoall(shards={shards}) factors diverge from "
        f"clustered(k={shards})"
    )
    return result


# --------------------------------------------------------------------------
# Seeded corpus generators, one per pathology family.
# --------------------------------------------------------------------------


def weak_prime_pool_corpus(rng: random.Random, size: int = 10) -> list[int]:
    """Semiprimes drawn from a small shared-prime pool (low-entropy keygen).

    The paper's core finding: devices seeding their PRNG poorly draw
    primes from a tiny effective pool, so moduli collide in one factor.
    A few fresh-prime semiprimes are mixed in so clean moduli exist.
    """
    pool = [generate_prime(28, rng) for _ in range(4)]
    moduli = []
    for _ in range(size):
        if rng.random() < 0.3:
            moduli.append(generate_prime(32, rng) * generate_prime(32, rng))
        else:
            p, q = rng.sample(pool, 2)
            moduli.append(p * q)
    return moduli


def duplicate_corpus(rng: random.Random, size: int = 8) -> list[int]:
    """Clean semiprimes with byte-identical duplicates planted.

    Duplicates are the most common real-world pathology (default keys
    shipped on every unit); each copy must flag with divisor == N.
    """
    moduli = [
        generate_prime(32, rng) * generate_prime(32, rng)
        for _ in range(max(2, size // 2))
    ]
    while len(moduli) < size:
        moduli.append(rng.choice(moduli))
    rng.shuffle(moduli)
    return moduli


def prime_power_corpus(rng: random.Random, size: int = 8) -> list[int]:
    """Prime squares and cubes mixed with semiprimes sharing their base.

    Non-squarefree moduli (bit-error artifacts, Section 3.3.5) are where
    the exact and clustered families legitimately diverge in divisor
    multiplicity — the harness's family split exists for this corpus.
    """
    p, q = generate_prime(28, rng), generate_prime(28, rng)
    moduli = [p * p, p * generate_prime(32, rng), q * q * q, q * generate_prime(32, rng)]
    while len(moduli) < size:
        moduli.append(generate_prime(32, rng) * generate_prime(32, rng))
    rng.shuffle(moduli)
    return moduli


def k_prime_clique_corpus(rng: random.Random, size: int = 6) -> list[int]:
    """Nine-prime products from a tiny pool (the IBM Section 3.3.2 shape).

    Every clique member pairwise shares several primes, and the shared
    part can exceed half the modulus — exercising the divisor == N
    pairwise-fallback path of factor recovery.
    """
    pool = [generate_prime(20, rng) for _ in range(12)]
    moduli = [math.prod(rng.sample(pool, 9)) for _ in range(max(2, size // 2))]
    while len(moduli) < size:
        moduli.append(generate_prime(32, rng) * generate_prime(32, rng))
    rng.shuffle(moduli)
    return moduli


def fermat_close_corpus(rng: random.Random, size: int = 8) -> list[int]:
    """Moduli whose primes are Fermat-close (clustered near a common base).

    Keygens that pick the second prime by scanning upward from the first
    produce primes packed into a narrow window; distinct moduli then
    share a prime whenever two scans start near the same point.  The
    tight prime spacing stresses GCD paths with nearly-equal operands.
    """
    moduli = []
    for _ in range(max(1, size // 2)):
        base = generate_prime(32, rng)
        close = next_prime(base + 2)
        other = next_prime(close + 2)
        moduli.append(base * close)  # shares `close` with the next modulus
        moduli.append(close * other)
    while len(moduli) < size + 1:
        lone = generate_prime(32, rng)  # Fermat-close pair, but unshared
        moduli.append(lone * next_prime(lone + 2))
    rng.shuffle(moduli)
    return moduli


def mixed_blend_corpus(rng: random.Random, size: int = 14) -> list[int]:
    """A blend drawing every pathology above into one corpus."""
    parts = (
        weak_prime_pool_corpus(rng, size=4)
        + duplicate_corpus(rng, size=4)
        + prime_power_corpus(rng, size=4)
        + k_prime_clique_corpus(rng, size=3)
        + fermat_close_corpus(rng, size=2)
    )
    rng.shuffle(parts)
    return parts[: max(size, 6)]


#: (name, generator) pairs — the harness's public sweep surface.
CORPUS_GENERATORS: list[tuple[str, Callable[[random.Random], list[int]]]] = [
    ("weak-prime-pool", weak_prime_pool_corpus),
    ("duplicates", duplicate_corpus),
    ("prime-powers", prime_power_corpus),
    ("k-prime-clique", k_prime_clique_corpus),
    ("fermat-close", fermat_close_corpus),
    ("mixed-blend", mixed_blend_corpus),
]
