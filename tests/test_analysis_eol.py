"""Tests for Cisco end-of-life correlation (Figure 7)."""

from repro.timeline import Month


class TestTinyStudyEol:
    def test_five_cisco_models_analysed(self, tiny_study):
        models = {a.model for a in tiny_study.eol}
        assert {"RV082", "RV120W", "RV220W", "RV180/180W", "SA520/540"} <= models

    def test_eol_dates_attached(self, tiny_study):
        for analysis in tiny_study.eol:
            if analysis.model == "RV082":
                assert analysis.eol == Month(2012, 9)
                assert analysis.end_of_sale == Month(2013, 3)

    def test_eol_precedes_end_of_sale(self, tiny_study):
        for analysis in tiny_study.eol:
            if analysis.eol and analysis.end_of_sale:
                assert analysis.eol < analysis.end_of_sale

    def test_populations_decline_after_eol(self, tiny_study):
        # "end-of-life announcements marked the beginning of a slow decrease"
        declining = [a for a in tiny_study.eol if a.declining_after_eol]
        assert len(declining) >= 3

    def test_final_population_below_eol_population(self, tiny_study):
        for analysis in tiny_study.eol:
            if analysis.eol is None or analysis.population_at_eol == 0:
                continue
            if analysis.model == "RV220W":
                continue  # EOL near study end; decline barely starts
            assert analysis.population_at_end <= analysis.population_at_eol * 1.2
