"""Tests for the passive-decryption exposure analysis (Section 1)."""

import random
from datetime import date

from repro.analysis.exposure import analyze_exposure
from repro.crypto.certs import DistinguishedName, self_signed_certificate
from repro.crypto.rsa import generate_rsa_keypair
from repro.scans.records import CertificateStore, ScanSnapshot
from repro.timeline import Month


def make_cert(seed):
    keypair = generate_rsa_keypair(64, random.Random(seed))
    return self_signed_certificate(
        subject=DistinguishedName(CN=f"h{seed}"),
        keypair=keypair,
        serial=seed,
        not_before=date(2015, 1, 1),
        not_after=date(2025, 1, 1),
    )


class TestAnalyzeExposure:
    def test_fraction_computation(self):
        store = CertificateStore()
        vuln_rsa_only = make_cert(1)
        vuln_dhe = make_cert(2)
        clean = make_cert(3)
        a = store.intern(vuln_rsa_only, weight=3, only_rsa_kex=True)
        b = store.intern(vuln_dhe, weight=1, only_rsa_kex=False)
        c = store.intern(clean, weight=5, only_rsa_kex=True)
        snapshot = ScanSnapshot("Censys", Month(2016, 4))
        for ip, cert_id in ((1, a), (2, b), (3, c)):
            snapshot.append(ip, cert_id)
        vulnerable = {vuln_rsa_only.public_key.n, vuln_dhe.public_key.n}
        stats = analyze_exposure(snapshot, store, vulnerable)
        assert stats.vulnerable_hosts == 4  # 3 + 1, weighted
        assert stats.passively_decryptable == 3
        assert stats.passive_fraction == 0.75
        assert stats.vulnerable_hosts_raw == 2
        assert stats.passively_decryptable_raw == 1

    def test_empty_snapshot(self):
        stats = analyze_exposure(
            ScanSnapshot("Censys", Month(2016, 4)), CertificateStore(), set()
        )
        assert stats.vulnerable_hosts == 0
        assert stats.passive_fraction == 0.0


class TestTinyStudyExposure:
    def test_majority_passively_decryptable(self, tiny_study):
        # Paper: 74% of vulnerable devices in the April 2016 scan support
        # only RSA key exchange.
        exposure = tiny_study.exposure
        assert exposure is not None
        assert exposure.vulnerable_hosts > 0
        assert 0.4 < exposure.passive_fraction <= 1.0

    def test_exposure_month_is_final_scan(self, tiny_study):
        assert tiny_study.exposure.month == tiny_study.snapshots[-1].month
