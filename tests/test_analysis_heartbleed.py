"""Tests for Heartbleed-drop quantification."""

from repro.analysis.heartbleed import analyze_heartbleed
from repro.analysis.timeseries import GlobalSeries, SeriesPoint, VendorSeries
from repro.timeline import HEARTBLEED, Month


def make_series(name, points):
    series = VendorSeries(name=name)
    for month, total, vuln in points:
        series.points.append(
            SeriesPoint(
                month=month, source="T", total=total, vulnerable=vuln,
                total_raw=int(total), vulnerable_raw=int(vuln),
            )
        )
    return series


class TestAnalyzeHeartbleed:
    def test_drop_at_heartbleed_detected(self):
        overall = make_series("(all)", [
            (Month(2014, 2), 1000, 100),
            (Month(2014, 3), 1000, 99),
            (HEARTBLEED, 700, 60),
            (Month(2014, 5), 700, 59),
        ])
        juniper = make_series("Juniper", [
            (Month(2014, 3), 500, 80),
            (HEARTBLEED, 300, 45),
        ])
        impact = analyze_heartbleed(
            GlobalSeries(overall=overall, by_vendor={"Juniper": juniper})
        )
        assert impact.drop_is_at_heartbleed
        assert impact.global_vulnerable_drop == 39
        (vendor_impact,) = impact.by_vendor
        assert vendor_impact.vendor == "Juniper"
        assert vendor_impact.total_drop == 200
        assert vendor_impact.vulnerable_drop == 35

    def test_no_bracket_no_vendor_impact(self):
        overall = make_series("(all)", [(Month(2015, 1), 10, 1)])
        impact = analyze_heartbleed(
            GlobalSeries(overall=overall, by_vendor={})
        )
        assert impact.by_vendor == ()

    def test_vendor_filter(self):
        overall = make_series("(all)", [
            (Month(2014, 3), 10, 5), (HEARTBLEED, 8, 3),
        ])
        series = GlobalSeries(
            overall=overall,
            by_vendor={
                "A": make_series("A", [(Month(2014, 3), 5, 2), (HEARTBLEED, 4, 1)]),
                "B": make_series("B", [(Month(2014, 3), 5, 3), (HEARTBLEED, 4, 2)]),
            },
        )
        impact = analyze_heartbleed(series, vendors=["A"])
        assert [v.vendor for v in impact.by_vendor] == ["A"]


class TestTinyStudyHeartbleed:
    def test_shocked_vendors_lose_hosts(self, tiny_study):
        impact = analyze_heartbleed(tiny_study.series, vendors=["Juniper", "HP"])
        for vendor_impact in impact.by_vendor:
            assert vendor_impact.total_drop > 0, vendor_impact.vendor

    def test_juniper_vulnerable_drop_positive(self, tiny_study):
        impact = analyze_heartbleed(tiny_study.series, vendors=["Juniper"])
        (juniper,) = impact.by_vendor
        assert juniper.vulnerable_drop > 0
        # "an even larger concurrent drop in the total population".
        assert juniper.total_drop >= juniper.vulnerable_drop
