"""Tests for the IP-reuse (churn vs patching) analysis."""

import random
from datetime import date

from repro.analysis.transitions import analyze_ip_reuse
from repro.crypto.certs import DistinguishedName, self_signed_certificate
from repro.crypto.rsa import generate_rsa_keypair
from repro.scans.records import CertificateStore, ScanSnapshot
from repro.timeline import Month


def make_cert(seed, org="IBM-owner"):
    keypair = generate_rsa_keypair(64, random.Random(seed))
    return self_signed_certificate(
        subject=DistinguishedName(O=org, CN=f"d{seed}"),
        keypair=keypair,
        serial=seed,
        not_before=date(2012, 1, 1),
        not_after=date(2022, 1, 1),
    )


class TestAnalyzeIpReuse:
    def setup_method(self):
        self.store = CertificateStore()
        self.vuln = make_cert(1)
        self.web = make_cert(2, org="SomeSite")
        self.vuln_id = self.store.intern(self.vuln, 1)
        self.web_id = self.store.intern(self.web, 1)
        self.vulnerable = {self.vuln.public_key.n}
        self.labels = {self.vuln_id: "IBM"}  # web cert unattributed

    def run(self, histories):
        months = max(len(h) for h in histories.values())
        snapshots = []
        for i in range(months):
            snap = ScanSnapshot("T", Month(2012, 1) + i)
            for ip, certs in histories.items():
                if i < len(certs) and certs[i] is not None:
                    snap.append(ip, certs[i])
            snapshots.append(snap)
        return analyze_ip_reuse(
            snapshots, self.store, self.labels, self.vulnerable, "IBM"
        )

    def test_reassigned_ip_counted(self):
        stats = self.run({1: [self.vuln_id, self.web_id]})
        assert stats.ips_ever_vulnerable == 1
        assert stats.later_served_other_certificate == 1
        assert stats.later_served_other_vendor == 1

    def test_stable_vulnerable_ip_not_counted(self):
        stats = self.run({1: [self.vuln_id, self.vuln_id, self.vuln_id]})
        assert stats.later_served_other_certificate == 0

    def test_earlier_other_certificate_ignored(self):
        # The web certificate appears BEFORE the vulnerable one: no reuse.
        stats = self.run({1: [self.web_id, self.vuln_id]})
        assert stats.later_served_other_certificate == 0

    def test_never_vulnerable_ip_ignored(self):
        stats = self.run({1: [self.web_id, self.web_id]})
        assert stats.ips_ever_vulnerable == 0


class TestTinyStudyIpReuse:
    def test_ibm_reuse_plausible(self, tiny_study):
        stats = analyze_ip_reuse(
            tiny_study.snapshots,
            tiny_study.store,
            tiny_study.fingerprints.vendor_by_cert,
            tiny_study.vulnerable_moduli(),
            "IBM",
        )
        assert stats.ips_ever_vulnerable > 0
        # Churn exists but is a minority (paper: 350 of 1,728).
        assert stats.later_served_other_certificate <= stats.ips_ever_vulnerable
