"""Tests for the certificate-lifetime / offlining-vs-renewal analysis."""

import random
from datetime import date

from repro.analysis.lifetimes import analyze_certificate_lifetimes
from repro.crypto.certs import DistinguishedName, self_signed_certificate
from repro.crypto.rsa import generate_rsa_keypair
from repro.scans.records import CertificateStore, ScanSnapshot
from repro.timeline import Month


def make_cert(seed):
    keypair = generate_rsa_keypair(64, random.Random(seed))
    return self_signed_certificate(
        subject=DistinguishedName(O="IBM-owner", CN=f"c{seed}"),
        keypair=keypair,
        serial=seed,
        not_before=date(2011, 1, 1),
        not_after=date(2021, 1, 1),
    )


class TestLifetimes:
    def setup_method(self):
        self.store = CertificateStore()
        self.vuln = make_cert(1)
        self.fresh = make_cert(2)
        self.vuln_id = self.store.intern(self.vuln, 1)
        self.fresh_id = self.store.intern(self.fresh, 1)
        self.labels = {self.vuln_id: "IBM", self.fresh_id: "IBM"}
        self.vulnerable = {self.vuln.public_key.n}

    def run(self, histories, scans=None):
        months = scans or max(len(h) for h in histories.values())
        snapshots = []
        for i in range(months):
            snap = ScanSnapshot("T", Month(2012, 1) + i)
            for ip, certs in histories.items():
                if i < len(certs) and certs[i] is not None:
                    snap.append(ip, certs[i])
            snapshots.append(snap)
        return analyze_certificate_lifetimes(
            snapshots, self.store, self.labels, self.vulnerable, "IBM"
        )

    def test_single_long_tenure(self):
        stats = self.run({1: [self.vuln_id] * 5})
        assert stats.tenures == 1
        assert stats.mean_tenure_scans == 5
        assert stats.max_tenure_scans == 5
        # Survived to the end of the study: neither replaced nor offlined.
        assert stats.vulnerable_ended_by_replacement == 0
        assert stats.vulnerable_ended_by_disappearance == 0

    def test_replacement_detected(self):
        stats = self.run({1: [self.vuln_id, self.vuln_id, self.fresh_id]})
        assert stats.tenures == 2
        assert stats.vulnerable_tenures == 1
        assert stats.vulnerable_ended_by_replacement == 1
        assert stats.vulnerable_ended_by_disappearance == 0

    def test_offlining_detected(self):
        stats = self.run({1: [self.vuln_id, self.vuln_id, None, None]}, scans=4)
        assert stats.vulnerable_ended_by_disappearance == 1
        assert stats.vulnerable_ended_by_replacement == 0
        assert stats.offlining_dominates

    def test_gap_tolerated_within_tenure(self):
        stats = self.run({1: [self.vuln_id, None, self.vuln_id]})
        assert stats.tenures == 1
        assert stats.max_tenure_scans == 3

    def test_empty_vendor(self):
        self.run({1: [self.fresh_id]})
        # fresh cert is IBM-labelled; use a different vendor entirely.
        empty = analyze_certificate_lifetimes(
            [], self.store, self.labels, self.vulnerable, "HP"
        )
        assert empty.tenures == 0
        assert empty.mean_tenure_scans == 0.0


class TestTinyStudyLifetimes:
    def test_ibm_offlining_dominates_renewal(self, tiny_study):
        # The paper's §4.1 conclusion for IBM: the decline is devices going
        # away, not certificates being renewed in place.
        stats = analyze_certificate_lifetimes(
            tiny_study.snapshots,
            tiny_study.store,
            tiny_study.fingerprints.vendor_by_cert,
            tiny_study.vulnerable_moduli(),
            "IBM",
        )
        assert stats.vulnerable_tenures > 0
        assert stats.offlining_dominates

    def test_tenures_are_long(self, tiny_study):
        # Device certificates sit untouched for years.
        stats = analyze_certificate_lifetimes(
            tiny_study.snapshots,
            tiny_study.store,
            tiny_study.fingerprints.vendor_by_cert,
            tiny_study.vulnerable_moduli(),
            "Innominate",
        )
        if stats.tenures:
            assert stats.max_tenure_scans >= 10
