"""Tests for Tables 1-5 builders over the tiny study."""

from repro.analysis.tables import build_table2
from repro.devices.vendors import ResponseCategory
from repro.timeline import Month


class TestTable1:
    def test_raw_counts_consistent(self, tiny_study):
        t = tiny_study.table1
        assert t.vulnerable_moduli_raw <= t.total_distinct_moduli_raw
        assert t.distinct_https_moduli_raw <= t.distinct_https_certificates_raw
        assert t.distinct_https_certificates_raw <= t.https_host_records_raw
        assert t.vulnerable_https_host_records_raw <= t.https_host_records_raw

    def test_weighted_magnitudes_near_paper(self, tiny_study):
        t = tiny_study.table1
        # Scale-corrected estimates should land within ~2x of the paper.
        assert 0.5e9 < t.https_host_records < 3.1e9
        assert 40e6 < t.total_distinct_moduli < 165e6
        assert 100_000 < t.vulnerable_moduli < 650_000

    def test_vulnerable_fraction_below_one_percent(self, tiny_study):
        # Paper: 0.39% of distinct moduli factored.
        assert 0.0005 < tiny_study.table1.vulnerable_moduli_fraction < 0.01

    def test_vulnerable_counts_match_fingerprints(self, tiny_study):
        assert tiny_study.table1.vulnerable_moduli_raw >= len(
            tiny_study.fingerprints.factored_clean
        ) * 0.9


class TestTable2:
    def test_category_counts(self):
        t = build_table2()
        assert t.notified_count == 37
        assert t.public_advisory_count == 5

    def test_all_categories_present(self):
        t = build_table2()
        for category in (
            ResponseCategory.PUBLIC_ADVISORY,
            ResponseCategory.PRIVATE_RESPONSE,
            ResponseCategory.AUTO_RESPONSE,
            ResponseCategory.NO_RESPONSE,
        ):
            assert t.by_category.get(category)

    def test_acknowledged_about_half(self):
        # "About half of the vendors acknowledged receipt" — public
        # advisories plus private responses.
        t = build_table2()
        assert 10 <= t.acknowledged_count <= 20


class TestTable3:
    def test_sources_and_dates(self, tiny_study):
        earliest, latest = tiny_study.table3
        assert earliest.source == "EFF"
        assert earliest.month == Month(2010, 7)
        assert latest.source == "Censys"
        assert latest.month == Month(2016, 5)

    def test_growth_over_study(self, tiny_study):
        earliest, latest = tiny_study.table3
        # Paper: 11.26M -> 38.01M handshakes.
        assert latest.tls_handshakes > 2.5 * earliest.tls_handshakes

    def test_keys_not_more_than_certs(self, tiny_study):
        earliest, latest = tiny_study.table3
        for column in (earliest, latest):
            assert column.distinct_rsa_keys_raw <= column.distinct_certificates_raw


class TestTable4:
    def test_all_protocols_present(self, tiny_study):
        protocols = {row.protocol for row in tiny_study.table4}
        assert protocols == {"HTTPS", "SSH", "POP3S", "IMAPS", "SMTPS"}

    def test_https_dominates_vulnerable_hosts(self, tiny_study):
        rows = {row.protocol: row for row in tiny_study.table4}
        assert rows["HTTPS"].vulnerable_hosts > rows["SSH"].vulnerable_hosts

    def test_mail_protocols_zero_vulnerable(self, tiny_study):
        rows = {row.protocol: row for row in tiny_study.table4}
        for protocol in ("POP3S", "IMAPS", "SMTPS"):
            assert rows[protocol].vulnerable_hosts == 0

    def test_ssh_vulnerable_in_paper_ballpark(self, tiny_study):
        rows = {row.protocol: row for row in tiny_study.table4}
        # Paper: 723 vulnerable SSH hosts.
        assert 200 < rows["SSH"].vulnerable_hosts < 2000

    def test_rsa_hosts_do_not_exceed_total(self, tiny_study):
        for row in tiny_study.table4:
            assert row.rsa_hosts <= row.total_hosts + 1e-9


class TestTable5:
    def test_satisfy_outnumbers_refute(self, tiny_study):
        # Paper Table 5: 23 satisfy vs 8 do not.
        t = tiny_study.table5
        assert len(t.satisfy) > len(t.do_not_satisfy)

    def test_key_vendors_on_correct_sides(self, tiny_study):
        t = tiny_study.table5
        assert "Juniper" in t.do_not_satisfy
        assert "IBM" in t.satisfy
        assert "Cisco" in t.satisfy

    def test_registry_agreement(self, tiny_study):
        for vendor, (expected, measured) in tiny_study.table5.expected_vs_registry().items():
            if expected is None or measured == "inconclusive":
                continue
            assert (measured == "openssl") == expected, vendor
