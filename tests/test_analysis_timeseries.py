"""Tests for time-series aggregation (synthetic and tiny-study)."""

import random
from datetime import date

from repro.analysis.timeseries import SeriesPoint, VendorSeries, build_series
from repro.crypto.certs import DistinguishedName, self_signed_certificate
from repro.crypto.rsa import generate_rsa_keypair
from repro.scans.records import CertificateStore, ScanSnapshot
from repro.timeline import Month


def make_cert(seed):
    keypair = generate_rsa_keypair(64, random.Random(seed))
    return self_signed_certificate(
        subject=DistinguishedName(O="Juniper", CN=f"d{seed}"),
        keypair=keypair,
        serial=seed,
        not_before=date(2012, 1, 1),
        not_after=date(2022, 1, 1),
    )


class TestBuildSeries:
    def setup_method(self):
        self.store = CertificateStore()
        self.vuln_cert = make_cert(1)
        self.clean_cert = make_cert(2)
        self.vuln_id = self.store.intern(self.vuln_cert, weight=10)
        self.clean_id = self.store.intern(self.clean_cert, weight=10)
        self.vulnerable = {self.vuln_cert.public_key.n}
        self.labels = {self.vuln_id: "Juniper", self.clean_id: "Juniper"}

    def snapshot(self, month, records):
        snap = ScanSnapshot("TEST", month)
        for ip, cid in records:
            snap.append(ip, cid)
        return snap

    def test_weighted_counts(self):
        snapshots = [
            self.snapshot(Month(2012, 6), [(1, self.vuln_id), (2, self.clean_id)]),
        ]
        series = build_series(snapshots, self.store, self.labels, self.vulnerable)
        point = series.overall.points[0]
        assert point.total == 20
        assert point.vulnerable == 10
        assert point.total_raw == 2
        assert point.vulnerable_raw == 1

    def test_vendor_breakout(self):
        snapshots = [
            self.snapshot(Month(2012, 6), [(1, self.vuln_id), (2, self.clean_id)]),
        ]
        series = build_series(snapshots, self.store, self.labels, self.vulnerable)
        juniper = series.vendor("Juniper")
        assert juniper.points[0].total == 20
        assert juniper.points[0].vulnerable == 10

    def test_unlabelled_certs_only_in_overall(self):
        snapshots = [
            self.snapshot(Month(2012, 6), [(1, self.vuln_id)]),
        ]
        series = build_series(snapshots, self.store, {}, self.vulnerable)
        assert series.overall.points[0].total == 10
        assert series.by_vendor == {}

    def test_unknown_vendor_empty_series(self):
        series = build_series([], self.store, {}, set())
        assert series.vendor("Nobody").points == []

    def test_multiple_months_ordered(self):
        snapshots = [
            self.snapshot(Month(2012, 6), [(1, self.vuln_id)]),
            self.snapshot(Month(2012, 7), [(1, self.vuln_id), (2, self.clean_id)]),
        ]
        series = build_series(snapshots, self.store, self.labels, self.vulnerable)
        assert [p.month for p in series.overall.points] == [
            Month(2012, 6), Month(2012, 7),
        ]
        assert series.overall.totals() == [10, 20]


class TestVendorSeriesHelpers:
    def make_series(self, values):
        series = VendorSeries(name="x")
        for i, (total, vuln) in enumerate(values):
            series.points.append(
                SeriesPoint(
                    month=Month(2012, 1) + i, source="T", total=total,
                    vulnerable=vuln, total_raw=int(total),
                    vulnerable_raw=int(vuln),
                )
            )
        return series

    def test_peak_vulnerable(self):
        series = self.make_series([(10, 1), (10, 5), (10, 3)])
        assert series.peak_vulnerable().vulnerable == 5

    def test_largest_drop_vulnerable(self):
        series = self.make_series([(10, 5), (10, 4), (10, 1)])
        month, drop = series.largest_drop(vulnerable=True)
        assert month == Month(2012, 3)
        assert drop == 3

    def test_largest_drop_total(self):
        series = self.make_series([(100, 0), (40, 0), (35, 0)])
        month, drop = series.largest_drop(vulnerable=False)
        assert month == Month(2012, 2)
        assert drop == 60

    def test_largest_drop_empty(self):
        assert VendorSeries(name="x").largest_drop() is None

    def test_month_point(self):
        series = self.make_series([(10, 1), (20, 2)])
        assert series.month_point(Month(2012, 2)).total == 20
        assert series.month_point(Month(2013, 1)) is None


class TestTinyStudySeries:
    def test_overall_total_grows_over_study(self, tiny_study):
        points = tiny_study.series.overall.points
        assert points[-1].total > points[0].total * 2

    def test_every_snapshot_has_a_point(self, tiny_study):
        assert len(tiny_study.series.overall.points) == len(tiny_study.snapshots)

    def test_vendor_scale_corrected_magnitudes(self, tiny_study):
        # Weighted Juniper totals should be in the paper's ballpark
        # (tens of thousands), despite simulating a couple dozen devices.
        juniper = tiny_study.series.vendor("Juniper")
        peak_total = max(juniper.totals())
        assert 20_000 < peak_total < 200_000
