"""Tests for per-IP transition analysis."""

import random
from datetime import date

from repro.analysis.transitions import analyze_transitions
from repro.crypto.certs import DistinguishedName, self_signed_certificate
from repro.crypto.rsa import generate_rsa_keypair
from repro.scans.records import CertificateStore, ScanSnapshot
from repro.timeline import Month


def make_cert(seed):
    keypair = generate_rsa_keypair(64, random.Random(seed))
    return self_signed_certificate(
        subject=DistinguishedName(O="Juniper", CN=f"d{seed}"),
        keypair=keypair,
        serial=seed,
        not_before=date(2012, 1, 1),
        not_after=date(2022, 1, 1),
    )


class TestTransitions:
    def setup_method(self):
        self.store = CertificateStore()
        self.vuln = make_cert(1)
        self.clean = make_cert(2)
        self.vuln_id = self.store.intern(self.vuln, 1)
        self.clean_id = self.store.intern(self.clean, 1)
        self.labels = {self.vuln_id: "Juniper", self.clean_id: "Juniper"}
        self.vulnerable = {self.vuln.public_key.n}

    def run(self, histories):
        """histories: ip -> list of cert ids per month."""
        months = max(len(h) for h in histories.values())
        snapshots = []
        for i in range(months):
            snap = ScanSnapshot("T", Month(2012, 1) + i)
            for ip, certs in histories.items():
                if i < len(certs) and certs[i] is not None:
                    snap.append(ip, certs[i])
            snapshots.append(snap)
        return analyze_transitions(
            snapshots, self.store, self.labels, self.vulnerable
        )

    def test_vulnerable_to_clean(self):
        stats = self.run({1: [self.vuln_id, self.clean_id]})["Juniper"]
        assert stats.to_nonvulnerable == 1
        assert stats.to_vulnerable == 0
        assert stats.multiple == 0
        assert stats.ips_ever_vulnerable == 1

    def test_clean_to_vulnerable(self):
        stats = self.run({1: [self.clean_id, self.vuln_id]})["Juniper"]
        assert stats.to_vulnerable == 1
        assert stats.to_nonvulnerable == 0

    def test_flapping_counts_as_multiple(self):
        stats = self.run(
            {1: [self.vuln_id, self.clean_id, self.vuln_id]}
        )["Juniper"]
        assert stats.multiple == 1
        assert stats.to_nonvulnerable == 0
        assert stats.to_vulnerable == 0

    def test_stable_ips_not_counted(self):
        stats = self.run(
            {1: [self.vuln_id, self.vuln_id], 2: [self.clean_id, self.clean_id]}
        )["Juniper"]
        assert stats.to_nonvulnerable == 0
        assert stats.to_vulnerable == 0
        assert stats.multiple == 0
        assert stats.ips_observed == 2

    def test_churn_statistic(self):
        # "ever served a non-vulnerable certificate after a vulnerable one".
        stats = self.run({1: [self.vuln_id, self.clean_id]})["Juniper"]
        assert stats.ever_served_nonvulnerable_after_vulnerable == 1

    def test_gap_in_observations_tolerated(self):
        stats = self.run({1: [self.vuln_id, None, self.clean_id]})["Juniper"]
        assert stats.to_nonvulnerable == 1

    def test_vendor_filter(self):
        result = self.run({1: [self.vuln_id, self.clean_id]})
        assert "Juniper" in result
        filtered = analyze_transitions(
            [], self.store, self.labels, self.vulnerable, vendors=["HP"]
        )
        assert filtered == {}


class TestTinyStudyTransitions:
    def test_juniper_transitions_exist(self, tiny_study):
        # The paper observed Juniper IPs moving in both directions plus
        # multi-flapping (1,100 / 1,200 / 250 of 169k IPs).  At tiny scale
        # (~36 Juniper IPs) only the *existence* of transitions is robust;
        # the both-directions shape is asserted by the full-scale Figure 3
        # benchmark.
        stats = tiny_study.transitions.get("Juniper")
        assert stats is not None
        assert (
            stats.to_nonvulnerable + stats.to_vulnerable + stats.multiple > 0
        )
        assert stats.ips_ever_vulnerable > 0

    def test_innominate_mostly_stable(self, tiny_study):
        # "the number of vulnerable mGuard hosts has remained roughly fixed":
        # transitions are rare relative to the population.
        stats = tiny_study.transitions.get("Innominate")
        if stats is None:
            return
        changed = stats.to_nonvulnerable + stats.to_vulnerable + stats.multiple
        assert changed <= stats.ips_observed * 0.25
