"""Tests for the fastgcd-style repro-batchgcd CLI."""

import subprocess
import sys

import pytest

from repro.batchgcd_cli import format_results, main, read_moduli
from repro.core.batchgcd import batch_gcd
from repro.crypto.primes import generate_prime


@pytest.fixture
def weak_corpus(rng):
    shared = generate_prime(48, rng)
    weak = [shared * generate_prime(48, rng) for _ in range(3)]
    healthy = [generate_prime(48, rng) * generate_prime(48, rng) for _ in range(3)]
    return weak, healthy


class TestReadModuli:
    def test_parses_hex_with_comments(self):
        lines = ["# header", "", "0xff1", "ABC123", "  10001  "]
        assert read_moduli(lines) == [0xFF1, 0xABC123, 0x10001]

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="line 2"):
            read_moduli(["ff", "not-hex"])

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError, match="must be >= 2"):
            read_moduli(["1"])


class TestFormatResults:
    def test_factored_lines(self, weak_corpus):
        weak, healthy = weak_corpus
        result = batch_gcd(weak + healthy)
        lines = format_results(result)
        assert len(lines) == 3
        for line in lines:
            n_hex, p_hex, q_hex = line.split()
            assert int(p_hex, 16) * int(q_hex, 16) == int(n_hex, 16)

    def test_unsplittable_duplicates_get_placeholders(self):
        n = 101 * 103
        result = batch_gcd([n, n])
        lines = format_results(result)
        assert lines == [f"{n:x} - -", f"{n:x} - -"]


class TestMain:
    def test_end_to_end(self, tmp_path, weak_corpus, capsys):
        weak, healthy = weak_corpus
        infile = tmp_path / "moduli.txt"
        infile.write_text("\n".join(f"{n:x}" for n in weak + healthy))
        outfile = tmp_path / "factors.txt"
        rc = main([str(infile), "-o", str(outfile), "--k", "3"])
        assert rc == 0
        lines = outfile.read_text().splitlines()
        assert len(lines) == 3
        reported = {int(line.split()[0], 16) for line in lines}
        assert reported == set(weak)

    def test_dedup_flag(self, tmp_path, weak_corpus):
        weak, _healthy = weak_corpus
        infile = tmp_path / "dup.txt"
        infile.write_text("\n".join([f"{weak[0]:x}"] * 4))
        outfile = tmp_path / "out.txt"
        rc = main([str(infile), "-o", str(outfile), "--dedup"])
        assert rc == 0
        # A single deduplicated modulus shares with nothing.
        assert outfile.read_text() == ""

    def test_telemetry_json_report(self, tmp_path, weak_corpus, capsys):
        from repro.telemetry import validate_report
        import json

        weak, healthy = weak_corpus
        infile = tmp_path / "moduli.txt"
        infile.write_text("\n".join(f"{n:x}" for n in weak + healthy))
        report_path = tmp_path / "report.json"
        rc = main(
            [str(infile), "-o", str(tmp_path / "out.txt"),
             "--k", "3", "--telemetry-json", str(report_path), "--timings"]
        )
        assert rc == 0
        payload = json.loads(report_path.read_text())
        assert validate_report(payload) == []
        [root] = payload["spans"]
        assert root["name"] == "batch_gcd"
        tasks = [
            c for c in root["children"] if c["name"] == "batch_gcd.task"
        ]
        assert len(tasks) == 9
        assert payload["timers"]["batch_gcd.task"]["count"] == 9
        # --timings prints the human-readable summary on stderr.
        captured = capsys.readouterr()
        assert "batch_gcd.task" in captured.err

    def test_no_flags_no_report_file(self, tmp_path, weak_corpus):
        weak, healthy = weak_corpus
        infile = tmp_path / "moduli.txt"
        infile.write_text("\n".join(f"{n:x}" for n in weak + healthy))
        rc = main([str(infile), "-o", str(tmp_path / "out.txt")])
        assert rc == 0
        assert not (tmp_path / "report.json").exists()

    def test_stdin_input(self, weak_corpus):
        weak, healthy = weak_corpus
        payload = "\n".join(f"{n:x}" for n in weak + healthy)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.batchgcd_cli", "-"],
            input=payload,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "3 vulnerable of 6 moduli" in proc.stderr
