"""Degenerate-corpus equivalence: every engine must flag the same moduli.

The paper's corpora are full of pathologies — byte-identical duplicate
keys across hosts, the 9-prime IBM remote-supervisor moduli (Section
3.3.2), and corrupted records that are prime powers rather than
semiprimes.  The naive pairwise engine, the classic Bernstein engine,
both clustered schedulers (in-process and pooled), and the sharded
all-to-all engine must agree on the vulnerable/clean verdict for every
modulus; on non-squarefree inputs the reported *divisor* may
legitimately differ in multiplicity, but never the flag.

The all-to-all engine carries a stronger contract than flag agreement:
at ``shards=N`` it must be **byte-identical** to the streaming clustered
engine at ``k=N`` — same divisor list, same recovered factors — on every
one of these corpora, at every shard count (including a count that does
not divide the corpus size).  :class:`TestAllToAllShardCounts` sweeps
that contract over the same degenerate corpora the flag tests use.
"""

import math
import random

import pytest

from tests.harness_differential import assert_alltoall_parity
from repro.core.alltoall import alltoall_batch_gcd
from repro.core.batchgcd import batch_gcd
from repro.core.clustered import ClusteredBatchGcd
from repro.core.naive import naive_pairwise_gcd
from repro.crypto.primes import generate_prime


def _flags(result):
    return [d > 1 for d in result.divisors]


def _engines():
    """(label, runner) for every engine the corpus must agree across."""
    return [
        ("naive", naive_pairwise_gcd),
        ("classic", batch_gcd),
        (
            "streaming",
            lambda m: ClusteredBatchGcd(k=3, scheduler="streaming").run(m),
        ),
        (
            "fanout",
            lambda m: ClusteredBatchGcd(k=3, scheduler="fanout").run(m),
        ),
        (
            "streaming-pool",
            lambda m: ClusteredBatchGcd(
                k=3, processes=2, scheduler="streaming"
            ).run(m),
        ),
        (
            "fanout-pool",
            lambda m: ClusteredBatchGcd(
                k=3, processes=2, scheduler="fanout"
            ).run(m),
        ),
        ("alltoall", lambda m: alltoall_batch_gcd(m, shards=3)),
        (
            "alltoall-pool",
            lambda m: alltoall_batch_gcd(m, shards=3, processes=2),
        ),
    ]


def assert_identical_flags(moduli):
    reference = None
    for label, run in _engines():
        flags = _flags(run(moduli))
        if reference is None:
            reference = flags
        assert flags == reference, f"{label} disagrees: {flags} != {reference}"
    return reference


class TestDuplicateModuli:
    def test_exact_duplicates_flag_each_other(self):
        rng = random.Random(5)
        p, q, r, s = (generate_prime(40, rng) for _ in range(4))
        dup = p * q
        moduli = [dup, r * s, dup, dup]
        flags = assert_identical_flags(moduli)
        assert flags == [True, False, True, True]

    def test_duplicates_mixed_with_shared_primes(self):
        rng = random.Random(6)
        p, q, r, s = (generate_prime(40, rng) for _ in range(4))
        moduli = [p * q, p * r, q * r, s * s, p * q]
        assert_identical_flags(moduli)


class TestPrimePowers:
    def test_square_shares_with_semiprime(self):
        rng = random.Random(7)
        p, q, r = (generate_prime(40, rng) for _ in range(3))
        moduli = [p * p, p * q, q * r]
        flags = assert_identical_flags(moduli)
        assert flags == [True, True, True]

    def test_isolated_square_stays_clean(self):
        rng = random.Random(8)
        p, q, r, s = (generate_prime(40, rng) for _ in range(4))
        moduli = [p * p, q * r, q * s]
        flags = assert_identical_flags(moduli)
        assert flags[0] is False  # nothing else carries p

    def test_two_copies_of_same_square(self):
        rng = random.Random(9)
        p, q, r = (generate_prime(40, rng) for _ in range(3))
        moduli = [p * p, p * p, q * r]
        flags = assert_identical_flags(moduli)
        assert flags == [True, True, False]


class TestNinePrimeIbmKeys:
    def test_ibm_style_clique_flags_everywhere(self):
        # Section 3.3.2: IBM remote supervisor adapters drew nine primes
        # from a tiny pool, so their moduli pairwise share factors.
        rng = random.Random(10)
        pool = [generate_prime(24, rng) for _ in range(12)]
        clique = [
            math.prod(rng.sample(pool, 9)),
            math.prod(rng.sample(pool, 9)),
            math.prod(rng.sample(pool, 9)),
        ]
        clean = [
            generate_prime(40, rng) * generate_prime(40, rng)
            for _ in range(3)
        ]
        moduli = [clique[0], clean[0], clique[1], clean[1], clique[2], clean[2]]
        flags = assert_identical_flags(moduli)
        assert flags == [True, False, True, False, True, False]


class TestMixedPathologies:
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_everything_at_once(self, k):
        rng = random.Random(11)
        p, q, r, s, t = (generate_prime(32, rng) for _ in range(5))
        pool = [generate_prime(20, rng) for _ in range(10)]
        dup = p * q
        moduli = [
            dup,
            dup,
            r * r,
            r * s,
            math.prod(rng.sample(pool, 9)),
            math.prod(rng.sample(pool, 9)),
            s * t,
            generate_prime(32, rng) * generate_prime(32, rng),
        ]
        classic = _flags(batch_gcd(moduli))
        for scheduler in ("streaming", "fanout"):
            for processes in (None, 2):
                engine = ClusteredBatchGcd(
                    k=k, processes=processes, scheduler=scheduler
                )
                assert _flags(engine.run(moduli)) == classic, (
                    f"{scheduler} k={k} processes={processes}"
                )


def _random_pathological_corpus(rng):
    """A seeded corpus generator planting every pathology at random.

    Roughly half the moduli are clean semiprimes of fresh primes; the
    rest draw from a small shared-prime pool (shared factors and prime
    squares), duplicate an earlier modulus, or multiply many tiny primes
    (the IBM nine-prime shape).
    """
    pool = [generate_prime(28, rng) for _ in range(6)]
    moduli = []
    for _ in range(rng.randrange(6, 14)):
        shape = rng.random()
        if shape < 0.45 or not moduli:
            moduli.append(
                generate_prime(32, rng) * generate_prime(32, rng)
            )
        elif shape < 0.65:
            moduli.append(rng.choice(pool) * rng.choice(pool))
        elif shape < 0.75:
            moduli.append(rng.choice(moduli))
        elif shape < 0.9:
            moduli.append(rng.choice(pool) * generate_prime(32, rng))
        else:
            moduli.append(math.prod(rng.sample(pool, 5)))
    return moduli


class TestPropertyDifferential:
    """Seeded property tests: random pathological corpora, all engines.

    Deliberately *not* Hypothesis: the corpus is a pure function of the
    seed, so a failure reproduces from the parametrize id alone and the
    suite stays dependency-free and deterministic run to run.
    """

    SEEDS = [101, 202, 303, 404, 505, 606]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_engines_agree_on_random_pathologies(self, seed):
        moduli = _random_pathological_corpus(random.Random(seed))
        assert_identical_flags(moduli)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_faulty_runs_match_fault_free(self, seed):
        from repro.faults import FaultPlan, FaultRule, RecoveryPolicy

        moduli = _random_pathological_corpus(random.Random(seed))
        classic_flags = _flags(batch_gcd(moduli))
        plan = FaultPlan(
            seed=seed,
            rules=(
                FaultRule(kind="crash", rate=0.5, times=1),
                FaultRule(kind="corrupt", rate=0.5, times=1),
            ),
        )
        fast = RecoveryPolicy(
            max_retries=2, backoff_base=0.001, backoff_cap=0.002
        )
        for scheduler in ("streaming", "fanout"):
            # divisors must be *identical* to the fault-free run of the
            # same engine; against classic only the flags are guaranteed
            # (multiplicity may differ on non-squarefree corpora)
            clean = ClusteredBatchGcd(k=3, scheduler=scheduler).run(moduli)
            engine = ClusteredBatchGcd(
                k=3, scheduler=scheduler, fault_plan=plan, recovery=fast
            )
            result = engine.run(moduli)
            assert result.divisors == clean.divisors, (
                f"{scheduler} diverged under faults (seed {seed})"
            )
            assert _flags(result) == classic_flags

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_resumed_runs_match_fault_free(self, seed, tmp_path):
        moduli = _random_pathological_corpus(random.Random(seed))
        classic_flags = _flags(batch_gcd(moduli))
        for scheduler in ("streaming", "fanout"):
            ckpt = tmp_path / scheduler
            first = ClusteredBatchGcd(
                k=3, scheduler=scheduler, checkpoint_dir=ckpt
            )
            interim = first.run(moduli)
            resumed = ClusteredBatchGcd(
                k=3, scheduler=scheduler, checkpoint_dir=ckpt
            )
            result = resumed.run(moduli)
            assert resumed.last_stats.checkpoint_loaded == 9
            assert result.divisors == interim.divisors, (
                f"{scheduler} resume diverged (seed {seed})"
            )
            assert _flags(result) == classic_flags


def _degenerate_corpora():
    """(name, moduli) for each pathology shape used by the flag tests."""

    def duplicates():
        rng = random.Random(5)
        p, q, r, s = (generate_prime(40, rng) for _ in range(4))
        dup = p * q
        return [dup, r * s, dup, dup]

    def duplicates_and_shared():
        rng = random.Random(6)
        p, q, r, s = (generate_prime(40, rng) for _ in range(4))
        return [p * q, p * r, q * r, s * s, p * q]

    def prime_squares():
        rng = random.Random(7)
        p, q, r = (generate_prime(40, rng) for _ in range(3))
        return [p * p, p * q, q * r, p * p, r * r]

    def ibm_clique():
        rng = random.Random(10)
        pool = [generate_prime(24, rng) for _ in range(12)]
        clique = [math.prod(rng.sample(pool, 9)) for _ in range(3)]
        clean = [
            generate_prime(40, rng) * generate_prime(40, rng)
            for _ in range(3)
        ]
        return [m for pair in zip(clique, clean) for m in pair]

    return [
        ("duplicates", duplicates()),
        ("duplicates-and-shared", duplicates_and_shared()),
        ("prime-squares", prime_squares()),
        ("ibm-clique", ibm_clique()),
        ("random-101", _random_pathological_corpus(random.Random(101))),
        ("random-202", _random_pathological_corpus(random.Random(202))),
    ]


class TestAllToAllShardCounts:
    """alltoall(shards=N) == clustered(k=N), byte for byte, on every corpus.

    N=7 deliberately does not divide most corpus sizes, so the
    round-robin partition leaves uneven shards and the product tree's
    odd-tail promotion is exercised on every level.
    """

    CORPORA = _degenerate_corpora()

    @pytest.mark.parametrize(
        "name,moduli", CORPORA, ids=[n for n, _ in CORPORA]
    )
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_byte_identical_to_clustered(self, name, moduli, shards):
        result = assert_alltoall_parity(moduli, shards=shards)
        assert _flags(result) == _flags(batch_gcd(moduli))

    @pytest.mark.parametrize("shards", [2, 7])
    def test_pooled_byte_identical_to_clustered(self, shards):
        moduli = _random_pathological_corpus(random.Random(303))
        assert_alltoall_parity(moduli, shards=shards, processes=2)
