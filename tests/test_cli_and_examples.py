"""Smoke tests for the CLI and the runnable examples."""

import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).parent.parent


def run(args, timeout=300):
    return subprocess.run(
        [sys.executable, *args],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestCli:
    def test_tiny_preset_prints_all_tables(self):
        proc = run(["-m", "repro.cli", "--preset", "tiny", "--seed", "3"])
        assert proc.returncode == 0, proc.stderr
        for marker in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
                       "Figure 1", "Figure 3", "Figure 7", "Figure 10"):
            assert marker in proc.stdout, marker

    def test_unknown_preset_rejected(self):
        proc = run(["-m", "repro.cli", "--preset", "huge"])
        assert proc.returncode != 0


class TestExamples:
    @pytest.mark.parametrize(
        "example",
        [
            "quickstart.py",
            "entropy_hole_demo.py",
            "weak_key_attack.py",
            "tls_interception.py",
            "dsa_nonce_reuse.py",
            "disclosure_campaign.py",
            "ssh_host_impersonation.py",
        ],
    )
    def test_example_runs_clean(self, example):
        proc = run([str(REPO / "examples" / example)])
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip()

    def test_cluster_demo_small(self):
        proc = run(
            [
                str(REPO / "examples" / "cluster_batchgcd_demo.py"),
                "--moduli", "300", "--processes", "2",
            ]
        )
        assert proc.returncode == 0, proc.stderr
        assert "classic batch GCD" in proc.stdout

    def test_vendor_response_study_tiny(self):
        proc = run(
            [str(REPO / "examples" / "vendor_response_study.py"),
             "--preset", "tiny", "--seed", "5"],
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert "headline findings" in proc.stdout
