"""Smoke tests for the CLI and the runnable examples."""

import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).parent.parent


def run(args, timeout=300):
    return subprocess.run(
        [sys.executable, *args],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestCli:
    def test_tiny_preset_prints_all_tables(self):
        proc = run(["-m", "repro.cli", "--preset", "tiny", "--seed", "3"])
        assert proc.returncode == 0, proc.stderr
        for marker in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
                       "Figure 1", "Figure 3", "Figure 7", "Figure 10"):
            assert marker in proc.stdout, marker

    def test_unknown_preset_rejected(self):
        proc = run(["-m", "repro.cli", "--preset", "huge"])
        assert proc.returncode != 0

    def test_telemetry_json_and_timings(self, tmp_path):
        import json

        from repro.pipeline import STAGE_SPANS
        from repro.telemetry import validate_report

        report_path = tmp_path / "telemetry.json"
        proc = run(
            ["-m", "repro.cli", "--preset", "tiny", "--seed", "3",
             "--telemetry-json", str(report_path), "--timings"]
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(report_path.read_text())
        assert validate_report(payload) == []
        assert [s["name"] for s in payload["spans"]] == list(STAGE_SPANS)
        assert payload["counters"]["scans.records"] > 0
        # --timings renders the per-stage summary to stdout.
        assert "batch_gcd" in proc.stdout
        assert "timeline_walk" in proc.stdout


class TestExamples:
    @pytest.mark.parametrize(
        "example",
        [
            "quickstart.py",
            "entropy_hole_demo.py",
            "weak_key_attack.py",
            "tls_interception.py",
            "dsa_nonce_reuse.py",
            "disclosure_campaign.py",
            "ssh_host_impersonation.py",
        ],
    )
    def test_example_runs_clean(self, example):
        proc = run([str(REPO / "examples" / example)])
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip()

    def test_quickstart_telemetry_report_validates(self, tmp_path):
        import json

        from repro.telemetry import validate_report

        report_path = tmp_path / "quickstart_report.json"
        proc = run(
            [str(REPO / "examples" / "quickstart.py"),
             "--telemetry-json", str(report_path)]
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(report_path.read_text())
        assert validate_report(payload) == []
        names = [s["name"] for s in payload["spans"]]
        assert "quickstart.batch_gcd" in names

    def test_cluster_demo_small(self):
        proc = run(
            [
                str(REPO / "examples" / "cluster_batchgcd_demo.py"),
                "--moduli", "300", "--processes", "2",
            ]
        )
        assert proc.returncode == 0, proc.stderr
        assert "classic batch GCD" in proc.stdout

    def test_vendor_response_study_tiny(self):
        proc = run(
            [str(REPO / "examples" / "vendor_response_study.py"),
             "--preset", "tiny", "--seed", "5"],
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert "headline findings" in proc.stdout
