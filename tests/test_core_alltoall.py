"""Tests for the sharded all-to-all GCD engine and its numt substrate.

Covers the pure sharding helpers (partition, exchange, pruned descent),
the engine's parity contract against the clustered engine at equal shard
count, the differential harness sweep over every pathology generator,
and the operational surface: telemetry, checkpoint resume, and stats.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from tests.harness_differential import (
    CORPUS_GENERATORS,
    assert_alltoall_parity,
    assert_engine_parity,
    mixed_blend_corpus,
)
from repro.core.alltoall import AllToAllBatchGcd, alltoall_batch_gcd
from repro.core.batchgcd import batch_gcd
from repro.core.results import merge_sparse_hits
from repro.crypto.primes import generate_prime
from repro.numt.sharding import (
    Shard,
    ShardProduct,
    exchange_all_to_all,
    gcd_descent_hits,
    partition_round_robin,
    shard_of,
)
from repro.numt.trees import product_tree
from repro.telemetry import Telemetry, use_telemetry


@pytest.fixture(scope="module")
def corpus():
    rng = random.Random(31337)
    pool = [generate_prime(48, rng) for _ in range(10)]
    moduli = []
    for _ in range(30):
        p, q = rng.sample(pool, 2)
        moduli.append(p * q)
    moduli += [generate_prime(48, rng) * generate_prime(48, rng) for _ in range(30)]
    rng.shuffle(moduli)
    return moduli


class TestPartition:
    """Seeded property tests for the round-robin partition (satellite 2)."""

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=11),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_modulus_in_exactly_one_shard(self, seed, shards):
        rng = random.Random(seed)
        corpus = [rng.randrange(2, 2**64) for _ in range(rng.randrange(1, 40))]
        parts = partition_round_robin(corpus, shards)
        placements: dict[int, int] = {}
        for shard in parts:
            for pos in range(len(shard.moduli)):
                index = shard.global_index(pos)
                assert index not in placements, (
                    f"corpus index {index} owned by shards "
                    f"{placements[index]} and {shard.index}"
                )
                placements[index] = shard.index
                assert shard.moduli[pos] == corpus[index]
        assert sorted(placements) == list(range(len(corpus)))

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=11),
    )
    @settings(max_examples=40, deadline=None)
    def test_shard_of_agrees_with_partition(self, seed, shards):
        rng = random.Random(seed)
        corpus = [rng.randrange(2, 2**32) for _ in range(rng.randrange(1, 30))]
        parts = partition_round_robin(corpus, shards)
        stride = parts[0].stride
        for shard in parts:
            for pos in range(len(shard.moduli)):
                assert shard_of(shard.global_index(pos), stride) == shard.index

    def test_deterministic_for_fixed_seed(self):
        # The corpus is a pure function of the seed and the partition a
        # pure function of the corpus, so two independent derivations
        # must agree shard for shard.
        first = partition_round_robin(mixed_blend_corpus(random.Random(99)), 5)
        second = partition_round_robin(mixed_blend_corpus(random.Random(99)), 5)
        assert first == second

    def test_shard_count_capped_at_corpus_size(self):
        parts = partition_round_robin([6, 10, 15], 7)
        assert len(parts) == 3
        assert [s.moduli for s in parts] == [(6,), (10,), (15,)]

    def test_empty_corpus_single_empty_shard(self):
        assert partition_round_robin([], 4) == [
            Shard(index=0, stride=1, moduli=())
        ]

    def test_invalid_shard_count_raises(self):
        with pytest.raises(ValueError):
            partition_round_robin([6, 10], 0)
        with pytest.raises(ValueError):
            shard_of(3, 0)


class TestExchange:
    def test_every_shard_receives_every_other_product(self):
        products = [
            ShardProduct(shard=s, count=2, product=(s + 2) ** 5)
            for s in range(4)
        ]
        inboxes, total = exchange_all_to_all(products)
        for s in range(4):
            assert [p.shard for p in inboxes[s]] == [
                j for j in range(4) if j != s
            ]
        assert total == sum(3 * p.wire_bytes for p in products)

    def test_single_shard_moves_no_bytes(self):
        inboxes, total = exchange_all_to_all(
            [ShardProduct(shard=0, count=3, product=2**100)]
        )
        assert inboxes == {0: []}
        assert total == 0

    def test_wire_bytes_rounds_up(self):
        assert ShardProduct(shard=0, count=1, product=255).wire_bytes == 1
        assert ShardProduct(shard=0, count=1, product=256).wire_bytes == 2


class TestGcdDescent:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=13),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_per_leaf_gcd(self, seed, leaves):
        # The descent must report exactly gcd(leaf, foreign) for every
        # leaf sharing content — including odd leaf counts, where the
        # promoted tail node changes the tree shape.
        rng = random.Random(seed)
        pool = [generate_prime(16, rng) for _ in range(8)]
        corpus = [
            math.prod(rng.sample(pool, 2)) * rng.choice([1, rng.choice(pool)])
            for _ in range(leaves)
        ]
        foreign = math.prod(rng.sample(pool, 3))
        tree = product_tree(corpus)
        hits = gcd_descent_hits(tree, foreign)
        expected = [
            (pos, math.gcd(n, foreign))
            for pos, n in enumerate(corpus)
            if math.gcd(n, foreign) > 1
        ]
        assert hits == expected

    def test_coprime_root_prunes_everything(self):
        tree = product_tree([6, 35, 143])
        assert gcd_descent_hits(tree, 17 * 19) == []

    def test_single_leaf_tree(self):
        tree = product_tree([21])
        assert gcd_descent_hits(tree, 7 * 11) == [(0, 7)]


class TestMergeOrderIndependence:
    """Merge order must not affect the canonical result (satellite 2)."""

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_shuffled_hit_sets_merge_identically(self, seed):
        rng = random.Random(seed)
        moduli = mixed_blend_corpus(rng, size=10)
        stride = rng.randrange(1, len(moduli) + 1)
        # Synthesize sparse hits the way shard passes produce them: each
        # (owner, other) pass contributes divisors of the owner's moduli.
        hits = []
        for owner in range(stride):
            owned = moduli[owner::stride]
            for other in range(stride):
                found = [
                    (pos, d)
                    for pos, n in enumerate(owned)
                    if (d := math.gcd(n, moduli[rng.randrange(len(moduli))])) > 1
                ]
                hits.append(((owner, other), found))
        canonical = merge_sparse_hits(moduli, stride, hits)
        for _ in range(5):
            rng.shuffle(hits)
            assert merge_sparse_hits(moduli, stride, hits) == canonical


class TestAllToAllEngine:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7, 16])
    def test_byte_identical_to_clustered_at_equal_shards(self, corpus, shards):
        assert_alltoall_parity(corpus, shards=shards)

    def test_shards_one_matches_classic(self, corpus):
        assert (
            alltoall_batch_gcd(corpus, shards=1).divisors
            == batch_gcd(corpus).divisors
        )

    def test_pooled_matches_in_process(self, corpus):
        in_process = alltoall_batch_gcd(corpus, shards=4)
        pooled = alltoall_batch_gcd(corpus, shards=4, processes=2)
        assert pooled.divisors == in_process.divisors

    def test_shards_larger_than_corpus(self):
        moduli = [101 * 103, 101 * 107]
        engine = AllToAllBatchGcd(shards=50)
        assert engine.run(moduli).divisors == [101, 101]
        assert engine.last_stats.k == 2

    def test_trivial_corpora(self):
        engine = AllToAllBatchGcd(shards=3)
        assert engine.run([]).divisors == []
        assert engine.run([15]).divisors == [1]
        assert engine.last_stats.tasks == 0

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            AllToAllBatchGcd(shards=0)
        with pytest.raises(ValueError):
            AllToAllBatchGcd(processes=0)
        with pytest.raises(ValueError):
            AllToAllBatchGcd(max_inflight=0)
        with pytest.raises(ValueError):
            AllToAllBatchGcd().run([15, 1])

    def test_stats_shape(self, corpus):
        engine = AllToAllBatchGcd(shards=4)
        engine.run(corpus)
        stats = engine.last_stats
        assert stats.scheduler == "alltoall"
        assert stats.k == 4
        assert stats.tasks == 16
        assert stats.tree_builds == 4
        assert stats.ipc_crossshard_bytes > 0
        assert stats.wall_seconds > 0

    def test_single_shard_crosses_no_bytes(self, corpus):
        engine = AllToAllBatchGcd(shards=1)
        engine.run(corpus)
        assert engine.last_stats.ipc_crossshard_bytes == 0

    def test_crossshard_bytes_match_product_sizes(self, corpus):
        # Each shard's compact product is re-sent to every other shard.
        shards = 4
        engine = AllToAllBatchGcd(shards=shards)
        engine.run(corpus)
        roots = [
            tree[-1][0]
            for tree in (
                product_tree(list(s.moduli))
                for s in partition_round_robin(corpus, shards)
            )
        ]
        expected = sum(
            (shards - 1) * ((r.bit_length() + 7) // 8) for r in roots
        )
        assert engine.last_stats.ipc_crossshard_bytes == expected

    def test_telemetry_spans_and_counters(self, corpus):
        telemetry = Telemetry()
        engine = AllToAllBatchGcd(shards=4)
        with use_telemetry(telemetry), telemetry.span("batch_gcd"):
            engine.run(corpus)
        report = telemetry.report()
        products = report.find_span("batch_gcd.products")
        builds = [
            c
            for c in products.children
            if c.name == "batch_gcd.alltoall.shard_tree"
        ]
        assert len(builds) == 4
        tasks = [
            c
            for c in report.find_span("batch_gcd").children
            if c.name == "batch_gcd.task"
        ]
        assert len(tasks) == 16
        assert (
            report.counters["batch_gcd.ipc_crossshard_bytes"]
            == engine.last_stats.ipc_crossshard_bytes
        )
        assert report.gauges["batch_gcd.queue_depth"] == 0
        assert report.counters["batch_gcd.tasks"] == 16

    def test_pruned_pairs_counted_on_disjoint_shards(self):
        # Two shards sharing nothing: every foreign pass is settled by
        # the root product GCD alone and counts as pruned.
        rng = random.Random(12)
        clean = [
            generate_prime(32, rng) * generate_prime(32, rng)
            for _ in range(8)
        ]
        telemetry = Telemetry()
        with use_telemetry(telemetry), telemetry.span("batch_gcd"):
            AllToAllBatchGcd(shards=2).run(clean)
        report = telemetry.report()
        assert report.counters["batch_gcd.alltoall.pruned_pairs"] == 2

    def test_checkpoint_resume_is_byte_identical(self, corpus, tmp_path):
        first = AllToAllBatchGcd(shards=3, checkpoint_dir=tmp_path)
        interim = first.run(corpus)
        assert first.last_stats.checkpoint_written == 9
        resumed = AllToAllBatchGcd(shards=3, checkpoint_dir=tmp_path)
        result = resumed.run(corpus)
        assert resumed.last_stats.checkpoint_loaded == 9
        assert resumed.last_stats.checkpoint_written == 0
        assert result.divisors == interim.divisors


class TestDifferentialSweep:
    """The harness's reason to exist: all eight engines over every pathology.

    Seeded, not Hypothesis: a failure reproduces from the parametrize id.
    """

    @pytest.mark.parametrize(
        "name,generator", CORPUS_GENERATORS, ids=[n for n, _ in CORPUS_GENERATORS]
    )
    @pytest.mark.parametrize("seed", [17, 42])
    def test_engine_matrix_parity(self, name, generator, seed):
        moduli = generator(random.Random(seed))
        assert_engine_parity(moduli, k=3, processes=2)

    @pytest.mark.parametrize(
        "name,generator", CORPUS_GENERATORS, ids=[n for n, _ in CORPUS_GENERATORS]
    )
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_alltoall_parity_all_shard_counts(self, name, generator, shards):
        moduli = generator(random.Random(23))
        assert_alltoall_parity(moduli, shards=shards)
