"""Tests for the classic batch-GCD engine against the naive oracle."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batchgcd import batch_gcd, batch_gcd_divisors
from repro.core.naive import naive_pairwise_gcd
from repro.crypto.primes import generate_prime


def _shared_prime_corpus(rng, primes=12, moduli=20, share_rate=0.5):
    pool = [generate_prime(48, rng) for _ in range(primes)]
    out = []
    for _ in range(moduli):
        p = rng.choice(pool)
        q = rng.choice(pool)
        while q == p:
            q = rng.choice(pool)
        out.append(p * q)
    return out


class TestBatchGcdBasics:
    def test_empty(self):
        assert batch_gcd_divisors([]) == []

    def test_single_modulus_clean(self):
        assert batch_gcd_divisors([77]) == [1]

    def test_two_sharing(self):
        p, q1, q2 = 101, 103, 107
        divisors = batch_gcd_divisors([p * q1, p * q2])
        assert divisors == [p, p]

    def test_disjoint_corpus_all_clean(self, rng):
        moduli = [
            generate_prime(48, rng) * generate_prime(48, rng) for _ in range(10)
        ]
        assert batch_gcd_divisors(moduli) == [1] * 10

    def test_rejects_bad_moduli(self):
        with pytest.raises(ValueError):
            batch_gcd_divisors([15, 1])
        with pytest.raises(ValueError):
            batch_gcd_divisors([0])

    def test_three_share_one_prime(self):
        p = 1009
        moduli = [p * 1013, p * 1019, p * 1021, 1031 * 1033]
        divisors = batch_gcd_divisors(moduli)
        assert divisors == [p, p, p, 1]

    def test_modulus_sharing_both_primes(self):
        # N2 = p*q where p is shared with N1 and q with N3: divisor == N2.
        p, q, r, s = 101, 103, 107, 109
        moduli = [p * r, p * q, q * s]
        divisors = batch_gcd_divisors(moduli)
        assert divisors == [p, p * q, q]

    def test_duplicate_modulus_fully_flagged(self):
        n = 101 * 103
        divisors = batch_gcd_divisors([n, n])
        assert divisors == [n, n]


class TestAgainstNaiveOracle:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_matches_naive_on_shared_prime_corpora(self, data):
        seed = data.draw(st.integers(min_value=0, max_value=10**6))
        rng = random.Random(seed)
        moduli = _shared_prime_corpus(rng)
        assert batch_gcd(moduli).divisors == naive_pairwise_gcd(moduli).divisors

    @given(
        st.lists(
            st.integers(min_value=2, max_value=2**32), min_size=2, max_size=25
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_naive_on_arbitrary_integers(self, moduli):
        # Even on junk inputs (non-semiprime, even, tiny) the two engines
        # must agree: this is how bit-error artifacts flow through.
        assert batch_gcd(moduli).divisors == naive_pairwise_gcd(moduli).divisors


class TestRealWeakKeyScenario:
    def test_entropy_flaw_end_to_end(self, rng):
        # Shared first prime, divergent second prime (the paper's pattern).
        shared = generate_prime(48, rng)
        divergent = [generate_prime(48, rng) for _ in range(5)]
        healthy = [
            generate_prime(48, rng) * generate_prime(48, rng) for _ in range(5)
        ]
        weak = [shared * q for q in divergent]
        moduli = weak + healthy
        result = batch_gcd(moduli)
        assert result.vulnerable_moduli == weak
        factored = result.resolve()
        for n in weak:
            fact = factored[n]
            assert shared in (fact.p, fact.q)
