"""Tests for the cluster-parallel k-subset batch GCD (Figure 2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batchgcd import batch_gcd
from repro.core.clustered import ClusteredBatchGcd, clustered_batch_gcd
from repro.crypto.primes import generate_prime
from repro.telemetry import Telemetry, use_telemetry


@pytest.fixture(scope="module")
def corpus():
    rng = random.Random(31337)
    pool = [generate_prime(48, rng) for _ in range(10)]
    moduli = []
    for _ in range(30):
        p, q = rng.sample(pool, 2)
        moduli.append(p * q)
    moduli += [generate_prime(48, rng) * generate_prime(48, rng) for _ in range(30)]
    rng.shuffle(moduli)
    return moduli


class TestEquivalenceWithClassic:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7, 16])
    def test_all_k_match_classic(self, corpus, k):
        classic = batch_gcd(corpus)
        clustered = clustered_batch_gcd(corpus, k=k)
        assert clustered.divisors == classic.divisors

    def test_k_larger_than_corpus(self):
        moduli = [101 * 103, 101 * 107]
        assert clustered_batch_gcd(moduli, k=50).divisors == [101, 101]

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_property_equivalence_squarefree(self, seed, k):
        rng = random.Random(seed)
        pool = [generate_prime(40, rng) for _ in range(6)]
        moduli = []
        for _ in range(15):
            p, q = rng.sample(pool, 2)
            moduli.append(p * q)
        assert (
            clustered_batch_gcd(moduli, k=k).divisors
            == batch_gcd(moduli).divisors
        )

    @given(st.lists(st.integers(min_value=2, max_value=2**24), min_size=2, max_size=20),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_flagging_matches_classic_on_arbitrary_inputs(self, moduli, k):
        # On non-squarefree junk the divisor may under-report multiplicity,
        # but the vulnerable/clean verdict per modulus is always identical.
        classic = batch_gcd(moduli)
        clustered = clustered_batch_gcd(moduli, k=k)
        assert clustered.vulnerable_indices == classic.vulnerable_indices
        for a, b in zip(clustered.divisors, classic.divisors):
            assert b % a == 0  # clustered divisor always divides classic's


class TestEdgeCases:
    def test_empty(self):
        result = clustered_batch_gcd([], k=4)
        assert result.divisors == []

    def test_single(self):
        result = clustered_batch_gcd([77], k=4)
        assert result.divisors == [1]

    def test_rejects_invalid_moduli(self):
        with pytest.raises(ValueError):
            clustered_batch_gcd([10, 1], k=2)

    def test_rejects_invalid_k(self):
        with pytest.raises(ValueError):
            ClusteredBatchGcd(k=0)

    def test_rejects_invalid_processes(self):
        with pytest.raises(ValueError):
            ClusteredBatchGcd(k=2, processes=0)


class TestStatsAccounting:
    def test_stats_recorded(self, corpus):
        engine = ClusteredBatchGcd(k=4)
        engine.run(corpus)
        stats = engine.last_stats
        assert stats is not None
        assert stats.k == 4
        assert stats.tasks == 16
        assert stats.wall_seconds > 0
        assert stats.cpu_seconds > 0

    def test_total_work_grows_with_k(self, corpus):
        # The paper: total computation scales quadratically in k, but the
        # tasks parallelise.  Verify the task count is k**2.
        for k in (2, 4, 8):
            engine = ClusteredBatchGcd(k=k)
            engine.run(corpus)
            assert engine.last_stats.tasks == k * k

    def test_cpu_seconds_includes_product_build(self, corpus):
        # Regression: cpu_seconds used to sum only per-task compute time,
        # silently omitting the product-tree build phase.  Pin the full
        # accounting: cpu == product build + sum of per-task times (the
        # telemetry task timer records exactly the per-task component).
        telemetry = Telemetry()
        engine = ClusteredBatchGcd(k=4)
        with use_telemetry(telemetry):
            engine.run(corpus)
        stats = engine.last_stats
        task_seconds = telemetry.report().timers["batch_gcd.task"].wall_seconds
        assert stats.product_build_seconds > 0
        assert stats.cpu_seconds == pytest.approx(
            stats.product_build_seconds + task_seconds, rel=1e-6
        )

    def test_serial_cpu_never_exceeds_wall(self, corpus):
        # On the single-worker (in-process) path every accounted phase is a
        # disjoint sub-interval of the run, so cpu_seconds > wall_seconds
        # can never (falsely) hold.
        engine = ClusteredBatchGcd(k=4, processes=None)
        engine.run(corpus)
        stats = engine.last_stats
        assert stats.cpu_seconds <= stats.wall_seconds

    def test_trivial_corpus_stats_zeroed(self):
        engine = ClusteredBatchGcd(k=4)
        engine.run([77])
        assert engine.last_stats.product_build_seconds == 0.0
        assert engine.last_stats.cpu_seconds == 0.0


class TestMultiprocessing:
    def test_process_pool_matches_serial(self, corpus):
        serial = clustered_batch_gcd(corpus, k=4, processes=None)
        parallel = clustered_batch_gcd(corpus, k=4, processes=2)
        assert serial.divisors == parallel.divisors
