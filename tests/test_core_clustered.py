"""Tests for the cluster-parallel k-subset batch GCD (Figure 2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batchgcd import batch_gcd
from repro.core.clustered import SCHEDULERS, ClusteredBatchGcd, clustered_batch_gcd
from repro.crypto.primes import generate_prime
from repro.telemetry import Telemetry, use_telemetry


@pytest.fixture(scope="module")
def corpus():
    rng = random.Random(31337)
    pool = [generate_prime(48, rng) for _ in range(10)]
    moduli = []
    for _ in range(30):
        p, q = rng.sample(pool, 2)
        moduli.append(p * q)
    moduli += [generate_prime(48, rng) * generate_prime(48, rng) for _ in range(30)]
    rng.shuffle(moduli)
    return moduli


class TestEquivalenceWithClassic:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7, 16])
    def test_all_k_match_classic(self, corpus, k):
        classic = batch_gcd(corpus)
        clustered = clustered_batch_gcd(corpus, k=k)
        assert clustered.divisors == classic.divisors

    def test_k_larger_than_corpus(self):
        moduli = [101 * 103, 101 * 107]
        assert clustered_batch_gcd(moduli, k=50).divisors == [101, 101]

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_property_equivalence_squarefree(self, seed, k):
        rng = random.Random(seed)
        pool = [generate_prime(40, rng) for _ in range(6)]
        moduli = []
        for _ in range(15):
            p, q = rng.sample(pool, 2)
            moduli.append(p * q)
        assert (
            clustered_batch_gcd(moduli, k=k).divisors
            == batch_gcd(moduli).divisors
        )

    @given(st.lists(st.integers(min_value=2, max_value=2**24), min_size=2, max_size=20),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_flagging_matches_classic_on_arbitrary_inputs(self, moduli, k):
        # On non-squarefree junk the divisor may under-report multiplicity,
        # but the vulnerable/clean verdict per modulus is always identical.
        classic = batch_gcd(moduli)
        clustered = clustered_batch_gcd(moduli, k=k)
        assert clustered.vulnerable_indices == classic.vulnerable_indices
        for a, b in zip(clustered.divisors, classic.divisors):
            assert b % a == 0  # clustered divisor always divides classic's


class TestEdgeCases:
    def test_empty(self):
        result = clustered_batch_gcd([], k=4)
        assert result.divisors == []

    def test_single(self):
        result = clustered_batch_gcd([77], k=4)
        assert result.divisors == [1]

    def test_rejects_invalid_moduli(self):
        with pytest.raises(ValueError):
            clustered_batch_gcd([10, 1], k=2)

    def test_rejects_invalid_k(self):
        with pytest.raises(ValueError):
            ClusteredBatchGcd(k=0)

    def test_rejects_invalid_processes(self):
        with pytest.raises(ValueError):
            ClusteredBatchGcd(k=2, processes=0)


class TestStatsAccounting:
    def test_stats_recorded(self, corpus):
        engine = ClusteredBatchGcd(k=4)
        engine.run(corpus)
        stats = engine.last_stats
        assert stats is not None
        assert stats.k == 4
        assert stats.tasks == 16
        assert stats.wall_seconds > 0
        assert stats.cpu_seconds > 0

    def test_total_work_grows_with_k(self, corpus):
        # The paper: total computation scales quadratically in k, but the
        # tasks parallelise.  Verify the task count is k**2.
        for k in (2, 4, 8):
            engine = ClusteredBatchGcd(k=k)
            engine.run(corpus)
            assert engine.last_stats.tasks == k * k

    def test_cpu_seconds_includes_product_build(self, corpus):
        # Regression: cpu_seconds used to sum only per-task compute time,
        # silently omitting the product-tree build phase.  Pin the full
        # accounting: cpu == product build + sum of per-task times (the
        # telemetry task timer records exactly the per-task component).
        telemetry = Telemetry()
        engine = ClusteredBatchGcd(k=4)
        with use_telemetry(telemetry):
            engine.run(corpus)
        stats = engine.last_stats
        task_seconds = telemetry.report().timers["batch_gcd.task"].wall_seconds
        assert stats.product_build_seconds > 0
        assert stats.cpu_seconds == pytest.approx(
            stats.product_build_seconds + task_seconds, rel=1e-6
        )

    def test_serial_cpu_never_exceeds_wall(self, corpus):
        # On the single-worker (in-process) path every accounted phase is a
        # disjoint sub-interval of the run, so cpu_seconds > wall_seconds
        # can never (falsely) hold.
        engine = ClusteredBatchGcd(k=4, processes=None)
        engine.run(corpus)
        stats = engine.last_stats
        assert stats.cpu_seconds <= stats.wall_seconds

    def test_trivial_corpus_stats_zeroed(self):
        engine = ClusteredBatchGcd(k=4)
        engine.run([77])
        assert engine.last_stats.product_build_seconds == 0.0
        assert engine.last_stats.cpu_seconds == 0.0


class TestMultiprocessing:
    def test_process_pool_matches_serial(self, corpus):
        serial = clustered_batch_gcd(corpus, k=4, processes=None)
        parallel = clustered_batch_gcd(corpus, k=4, processes=2)
        assert serial.divisors == parallel.divisors


class TestTaskGraph:
    """The streaming scheduler's cached, broadcast task graph."""

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError):
            ClusteredBatchGcd(k=2, scheduler="mapreduce")

    def test_rejects_invalid_max_inflight(self):
        with pytest.raises(ValueError):
            ClusteredBatchGcd(k=2, max_inflight=0)

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_schedulers_match_classic(self, corpus, scheduler):
        result = clustered_batch_gcd(corpus, k=4, scheduler=scheduler)
        assert result.divisors == batch_gcd(corpus).divisors

    def test_streaming_matches_fanout_on_pool(self, corpus):
        streaming = clustered_batch_gcd(
            corpus, k=4, processes=2, scheduler="streaming"
        )
        fanout = clustered_batch_gcd(
            corpus, k=4, processes=2, scheduler="fanout"
        )
        assert streaming.divisors == fanout.divisors

    def test_subset_trees_built_exactly_k_times(self, corpus):
        # The tentpole: the fanout driver rebuilt every subset's tree in
        # every task (k**2 builds); streaming builds each exactly once.
        telemetry = Telemetry()
        engine = ClusteredBatchGcd(k=4, scheduler="streaming")
        with use_telemetry(telemetry), telemetry.span("batch_gcd"):
            engine.run(corpus)
        report = telemetry.report()
        products = report.find_span("batch_gcd.products")
        builds = [
            c for c in products.children if c.name == "batch_gcd.subset_tree"
        ]
        assert len(builds) == 4
        assert engine.last_stats.tree_builds == 4
        assert engine.last_stats.tree_build_seconds > 0
        # ... and no task rebuilds one.
        tasks = [
            c
            for c in report.find_span("batch_gcd").children
            if c.name == "batch_gcd.task"
        ]
        assert len(tasks) == 16
        for task in tasks:
            assert all(
                c.name != "batch_gcd.task.product_tree" for c in task.children
            )

    def test_fanout_rebuilds_trees_per_task(self, corpus):
        telemetry = Telemetry()
        engine = ClusteredBatchGcd(k=3, scheduler="fanout")
        with use_telemetry(telemetry), telemetry.span("batch_gcd"):
            engine.run(corpus)
        report = telemetry.report()
        assert report.find_span("batch_gcd.subset_tree") is None
        task = report.find_span("batch_gcd.task")
        assert any(
            c.name == "batch_gcd.task.product_tree" for c in task.children
        )
        assert engine.last_stats.tree_builds == 0

    def test_task_payloads_carry_no_subset_products(self, corpus):
        # The one-shot broadcast carries all big ints; task payloads are
        # chunks of (i, j) index pairs.  The IPC byte counters make the
        # asymmetry checkable: all task payloads together stay tiny (a few
        # dozen bytes per task) while the broadcast holds the corpus.
        telemetry = Telemetry()
        engine = ClusteredBatchGcd(k=4, processes=2, scheduler="streaming")
        with use_telemetry(telemetry), telemetry.span("batch_gcd"):
            engine.run(corpus)
        stats = engine.last_stats
        report = telemetry.report()
        assert stats.ipc_broadcast_bytes > 0
        assert stats.ipc_task_bytes > 0
        assert stats.ipc_task_bytes < 100 * stats.tasks
        assert stats.ipc_task_bytes < stats.ipc_broadcast_bytes
        assert (
            report.counters["batch_gcd.ipc_broadcast_bytes"]
            == stats.ipc_broadcast_bytes
        )
        assert (
            report.counters["batch_gcd.ipc_task_bytes"] == stats.ipc_task_bytes
        )
        assert report.timers["batch_gcd.queue_latency"].count > 0

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_queue_depth_drains_without_worker_reports(
        self, corpus, scheduler, monkeypatch
    ):
        # Satellite regression: the fanout consume() used to decrement the
        # queue_depth gauge only when a worker report was attached, so runs
        # whose workers were uninstrumented appeared stuck at full depth.
        # Simulate that shape: a recording parent registry, but every task
        # outcome stripped of its report before consumption.
        from repro.core import clustered as mod

        real_run_task = mod._run_task
        real_execute_chunk = mod._execute_chunk

        def run_task_no_report(args):
            i, j, divisors, seconds, _report = real_run_task(args)
            return i, j, divisors, seconds, None

        def execute_chunk_no_report(state, pairs):
            results, _report = real_execute_chunk(state, pairs)
            return results, None

        monkeypatch.setattr(mod, "_run_task", run_task_no_report)
        monkeypatch.setattr(mod, "_execute_chunk", execute_chunk_no_report)
        telemetry = Telemetry()
        engine = ClusteredBatchGcd(k=3, scheduler=scheduler)
        with use_telemetry(telemetry):
            engine.run(corpus)
        assert telemetry.report().gauges["batch_gcd.queue_depth"] == 0

    def test_streaming_respects_max_inflight_window(self, corpus):
        result = ClusteredBatchGcd(
            k=4, processes=2, scheduler="streaming", max_inflight=1
        ).run(corpus)
        assert result.divisors == batch_gcd(corpus).divisors

    def test_stats_record_scheduler(self, corpus):
        for scheduler in SCHEDULERS:
            engine = ClusteredBatchGcd(k=2, scheduler=scheduler)
            engine.run(corpus)
            assert engine.last_stats.scheduler == scheduler
