"""Tests for batch-GCD result objects and factor recovery."""

import pytest

from repro.core.batchgcd import batch_gcd
from repro.core.results import BatchGcdResult, FactoredModulus, combine_results


class TestBatchGcdResult:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            BatchGcdResult([15], [1, 1])

    def test_vulnerable_indices(self):
        result = BatchGcdResult([15, 77, 33], [3, 1, 3])
        assert result.vulnerable_indices == [0, 2]
        assert result.vulnerable_moduli == [15, 33]
        assert result.vulnerable_count() == 2

    def test_resolve_simple_split(self):
        result = BatchGcdResult([101 * 103], [101])
        factored = result.resolve()
        assert factored[101 * 103] == FactoredModulus(101 * 103, 101, 103)

    def test_resolve_orders_factors(self):
        result = BatchGcdResult([101 * 103], [103])
        fact = result.resolve()[101 * 103]
        assert fact.p < fact.q

    def test_resolve_cached(self):
        result = BatchGcdResult([101 * 103], [101])
        assert result.resolve() is result.resolve()

    def test_full_share_resolved_by_pairwise_fallback(self):
        # N = p*q with p shared with A and q shared with B: divisor == N.
        p, q, r, s = 101, 103, 107, 109
        moduli = [p * r, p * q, q * s]
        result = batch_gcd(moduli)
        factored = result.resolve()
        assert factored[p * q] == FactoredModulus(p * q, p, q)

    def test_duplicate_moduli_cannot_split(self):
        # Two copies of the same modulus share "everything": no other
        # modulus isolates a single prime, so resolution must omit them
        # rather than return nonsense.
        n = 101 * 103
        result = batch_gcd([n, n])
        assert result.resolve() == {}

    def test_recovered_primes(self):
        p, q1, q2 = 101, 103, 107
        result = batch_gcd([p * q1, p * q2])
        assert result.recovered_primes() == {p, q1, q2}


class TestFactoredModulus:
    def test_well_formed(self):
        assert FactoredModulus(101 * 103, 101, 103).is_well_formed

    def test_composite_factor_not_well_formed(self):
        assert not FactoredModulus(4 * 101, 4, 101).is_well_formed

    def test_lopsided_not_well_formed(self):
        assert not FactoredModulus(3 * 1009, 3, 1009).is_well_formed


class TestMerge:
    def test_merge_takes_lcm(self):
        moduli = [3 * 5 * 7]
        a = BatchGcdResult(moduli, [3 * 5])
        b = BatchGcdResult(moduli, [5 * 7])
        merged = a.merge(b)
        assert merged.divisors == [3 * 5 * 7]

    def test_merge_rejects_different_corpora(self):
        with pytest.raises(ValueError):
            BatchGcdResult([15], [1]).merge(BatchGcdResult([21], [1]))

    def test_combine_results(self):
        moduli = [3 * 5 * 7]
        parts = [
            BatchGcdResult(moduli, [3]),
            BatchGcdResult(moduli, [5]),
            BatchGcdResult(moduli, [1]),
        ]
        assert combine_results(parts).divisors == [15]

    def test_combine_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_results([])
