"""The engine seam: adaptive selection, facades, and CLI/config exposure."""

import random

import pytest

from repro.core.alltoall import DEFAULT_SHARDS
from repro.core.batchgcd import batch_gcd
from repro.core.select import (
    AUTO_POOL_MAX_WORKERS,
    AUTO_POOL_MIN_MODULI,
    ENGINE_NAMES,
    ClassicBatchGcd,
    auto_processes,
    select_engine,
)
from repro.crypto.primes import generate_prime
from repro.studyconfig import StudyConfig


def _corpus(seed, n=20):
    rng = random.Random(seed)
    pool = [generate_prime(32, rng) for _ in range(10)]
    out = []
    for _ in range(n):
        a, b = rng.sample(range(10), 2)
        out.append(pool[a] * pool[b])
    return out


class TestAutoProcesses:
    def test_explicit_request_always_wins(self):
        assert auto_processes(10**6, requested=2, cores=64)[0] == 2

    def test_single_core_stays_in_process(self):
        assert auto_processes(10**6, cores=1)[0] is None

    def test_small_corpus_stays_in_process(self):
        # BENCH_batchgcd.json: pool startup dominates small corpora
        # (0.043 s pooled vs 0.0185 s in-process at n=616).
        assert auto_processes(616, cores=8)[0] is None
        assert auto_processes(AUTO_POOL_MIN_MODULI - 1, cores=8)[0] is None

    def test_large_corpus_pools_with_derived_workers(self):
        workers, reason = auto_processes(AUTO_POOL_MIN_MODULI, cores=4)
        assert workers == 3
        assert "pooled" in reason

    def test_worker_ceiling(self):
        workers, _ = auto_processes(10**6, cores=64)
        assert workers == AUTO_POOL_MAX_WORKERS


class TestSelectEngine:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            select_engine(10, engine="bogus")

    def test_auto_small_corpus_is_in_process_clustered(self):
        choice = select_engine(100, engine="auto", cores=8)
        assert choice.name == "clustered"
        assert choice.processes is None
        assert choice.engine.processes is None

    def test_auto_large_corpus_pools(self):
        choice = select_engine(10_000, engine="auto", cores=4)
        assert choice.name == "clustered"
        assert choice.processes == 3
        assert choice.engine.processes == 3

    def test_auto_with_store_dir_prefers_incremental(self, tmp_path):
        choice = select_engine(
            100, engine="auto", store_dir=tmp_path / "store"
        )
        assert choice.name == "incremental"
        assert choice.engine.store_dir == tmp_path / "store"

    def test_explicit_clustered_keeps_requested_processes(self):
        choice = select_engine(10_000, engine="clustered", cores=8)
        assert choice.processes is None  # no auto-derivation when explicit

    def test_auto_with_shards_prefers_alltoall(self):
        choice = select_engine(100, engine="auto", shards=3)
        assert choice.name == "alltoall"
        assert choice.engine.shards == 3
        assert "auto" in choice.reason

    def test_explicit_alltoall_defaults_shards(self):
        choice = select_engine(100, engine="alltoall")
        assert choice.name == "alltoall"
        assert choice.engine.shards == DEFAULT_SHARDS

    def test_every_name_resolves(self, tmp_path):
        # store_dir only makes sense for the incremental resolution; the
        # all-to-all engine rejects it rather than ignoring it.
        for name in ENGINE_NAMES:
            store = tmp_path / name if name in ("auto", "incremental") else None
            choice = select_engine(10, engine=name, store_dir=store)
            assert choice.name in ENGINE_NAMES and choice.name != "auto"
            assert hasattr(choice.engine, "run")

    def test_selected_engines_agree(self, tmp_path):
        moduli = _corpus(1)
        reference = batch_gcd(moduli)
        for name in ENGINE_NAMES:
            store = tmp_path / name if name in ("auto", "incremental") else None
            choice = select_engine(
                len(moduli), engine=name, k=3, store_dir=store
            )
            result = choice.engine.run(moduli)
            assert [d > 1 for d in result.divisors] == [
                d > 1 for d in reference.divisors
            ], name
            assert choice.engine.last_stats is not None


class TestNoSilentFallback:
    """An unsatisfiable explicit request must raise, never be reinterpreted.

    The coverage gap this closes: nothing previously pinned down what
    happens when an explicit ``alltoall``/``incremental``-style request
    carries a knob the resolved engine cannot honour — selection could
    have silently dropped the knob and run a different configuration
    than the one asked for.
    """

    @pytest.mark.parametrize("engine", ["classic", "clustered", "incremental"])
    def test_shards_with_shardless_engine_raises_with_reason(self, engine):
        with pytest.raises(ValueError, match="no shard axis"):
            select_engine(100, engine=engine, shards=3)

    def test_alltoall_with_store_dir_raises_with_reason(self, tmp_path):
        with pytest.raises(ValueError, match="no persistent store"):
            select_engine(
                100, engine="alltoall", store_dir=tmp_path / "store"
            )

    def test_auto_with_both_store_and_shards_raises(self, tmp_path):
        # Either resolution would silently drop one knob, so auto must
        # refuse and name the conflict instead of picking.
        with pytest.raises(ValueError, match="cannot satisfy both"):
            select_engine(
                100,
                engine="auto",
                store_dir=tmp_path / "store",
                shards=3,
            )

    def test_invalid_shard_count_raises(self):
        with pytest.raises(ValueError, match="shards"):
            select_engine(100, engine="alltoall", shards=0)

    def test_auto_without_conflicts_still_resolves(self, tmp_path):
        # The guard must not over-trigger: each knob alone routes auto.
        assert select_engine(100, engine="auto").name == "clustered"
        assert (
            select_engine(100, engine="auto", shards=2).name == "alltoall"
        )
        assert (
            select_engine(
                100, engine="auto", store_dir=tmp_path / "s"
            ).name
            == "incremental"
        )


class TestClassicFacade:
    def test_runs_and_records_stats(self):
        moduli = _corpus(2)
        engine = ClassicBatchGcd()
        result = engine.run(moduli)
        assert result.divisors == batch_gcd(moduli).divisors
        assert engine.last_stats.scheduler == "classic"
        assert engine.last_stats.tasks == 1


class TestConfigAndCliExposure:
    def test_studyconfig_defaults(self):
        config = StudyConfig()
        assert config.batchgcd_engine == "auto"
        assert config.batchgcd_store_dir is None

    def test_cli_exposes_engine_flags(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        helptext = capsys.readouterr().out
        assert "--batchgcd-engine" in helptext
        assert "--batchgcd-store-dir" in helptext
        with pytest.raises(SystemExit) as excinfo:
            main(["--batchgcd-engine", "bogus"])
        assert excinfo.value.code == 2

    def test_batchgcd_cli_runs_incremental_engine(self, tmp_path, capsys):
        from repro.batchgcd_cli import main

        moduli = _corpus(3, n=12)
        source = tmp_path / "moduli.txt"
        source.write_text("\n".join(f"{m:x}" for m in moduli) + "\n")
        out = tmp_path / "factors.txt"
        code = main(
            [
                str(source),
                "-o", str(out),
                "--engine", "incremental",
                "--store-dir", str(tmp_path / "store"),
            ]
        )
        assert code == 0
        # Same input again: the store now serves the whole corpus and the
        # output must be byte-identical.
        again = tmp_path / "factors2.txt"
        code = main(
            [
                str(source),
                "-o", str(again),
                "--engine", "incremental",
                "--store-dir", str(tmp_path / "store"),
            ]
        )
        assert code == 0
        assert out.read_text() == again.read_text()

    def test_batchgcd_cli_auto_engine(self, tmp_path):
        from repro.batchgcd_cli import main

        moduli = _corpus(4, n=8)
        source = tmp_path / "moduli.txt"
        source.write_text("\n".join(f"{m:x}" for m in moduli) + "\n")
        assert main([str(source), "-o", str(tmp_path / "f.txt"), "--engine", "auto"]) == 0
