"""Tests for the certificate model, issuance, and key substitution."""

import random
from datetime import date

import pytest

from repro.crypto.certs import (
    DistinguishedName,
    issue_certificate,
    self_signed_certificate,
    substitute_public_key,
)
from repro.crypto.rsa import generate_rsa_keypair


@pytest.fixture(scope="module")
def keypair():
    return generate_rsa_keypair(128, random.Random(11))


@pytest.fixture
def cert(keypair):
    return self_signed_certificate(
        subject=DistinguishedName(O="Acme", CN="device-1"),
        keypair=keypair,
        serial=42,
        not_before=date(2012, 1, 1),
        not_after=date(2022, 1, 1),
        subject_alt_names=("acme.example",),
    )


class TestDistinguishedName:
    def test_rfc4514_rendering(self):
        dn = DistinguishedName(C="US", O="Acme", OU="Widgets", CN="w1")
        assert dn.rfc4514() == "C=US, O=Acme, OU=Widgets, CN=w1"

    def test_empty_fields_omitted(self):
        assert DistinguishedName(CN="only").rfc4514() == "CN=only"

    def test_parse_roundtrip(self):
        dn = DistinguishedName(C="DE", O="AVM", CN="fritz.box")
        assert DistinguishedName.parse(dn.rfc4514()) == dn

    def test_parse_empty(self):
        assert DistinguishedName.parse("") == DistinguishedName()

    def test_parse_rejects_unknown_attribute(self):
        with pytest.raises(ValueError):
            DistinguishedName.parse("XX=nope")

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            DistinguishedName.parse("no-equals-sign")


class TestSelfSignedCertificate:
    def test_is_self_signed(self, cert):
        assert cert.is_self_signed

    def test_signature_verifies(self, cert):
        assert cert.verify_signature()

    def test_tampered_subject_fails_verification(self, cert):
        import dataclasses

        tampered = dataclasses.replace(
            cert, subject=DistinguishedName(O="Evil", CN="device-1")
        )
        assert not tampered.verify_signature()

    def test_fingerprint_stable(self, cert):
        assert cert.fingerprint() == cert.fingerprint()

    def test_fingerprint_distinct_for_distinct_serial(self, keypair):
        def make(serial):
            return self_signed_certificate(
                subject=DistinguishedName(CN="x"),
                keypair=keypair,
                serial=serial,
                not_before=date(2012, 1, 1),
                not_after=date(2022, 1, 1),
            )

        assert make(1).fingerprint() != make(2).fingerprint()

    def test_validity_window(self, cert):
        assert cert.valid_on(date(2015, 6, 1))
        assert not cert.valid_on(date(2011, 12, 31))
        assert not cert.valid_on(date(2022, 1, 2))


class TestIssuedCertificate:
    def test_ca_issued_chain(self, keypair):
        ca_pair = generate_rsa_keypair(128, random.Random(12))
        ca_cert = self_signed_certificate(
            subject=DistinguishedName(O="TrustCo", CN="TrustCo CA"),
            keypair=ca_pair,
            serial=1,
            not_before=date(2010, 1, 1),
            not_after=date(2030, 1, 1),
            is_ca=True,
        )
        leaf = issue_certificate(
            subject=DistinguishedName(CN="www.example.com"),
            public_key=keypair.public,
            issuer_certificate=ca_cert,
            issuer_key=ca_pair.private,
            serial=2,
            not_before=date(2015, 1, 1),
            not_after=date(2017, 1, 1),
        )
        assert not leaf.is_self_signed
        assert leaf.issuer == ca_cert.subject
        assert leaf.verify_signature(signer=ca_pair.public)
        assert not leaf.verify_signature()  # not self-verifiable


class TestKeySubstitution:
    def test_only_key_and_signature_change(self, cert):
        other = generate_rsa_keypair(128, random.Random(13))
        swapped = substitute_public_key(cert, other.public)
        assert swapped.public_key.n == other.public.n
        assert swapped.subject == cert.subject
        assert swapped.issuer == cert.issuer
        assert swapped.serial == cert.serial
        assert swapped.subject_alt_names == cert.subject_alt_names
        assert swapped.signature_hash == "sha1"

    def test_substituted_certificate_fails_verification(self, cert):
        other = generate_rsa_keypair(128, random.Random(13))
        swapped = substitute_public_key(cert, other.public)
        assert not swapped.verify_signature()

    def test_substitution_deterministic(self, cert):
        other = generate_rsa_keypair(128, random.Random(13))
        a = substitute_public_key(cert, other.public)
        b = substitute_public_key(cert, other.public)
        assert a.fingerprint() == b.fingerprint()

    def test_resigned_substitution_verifies_with_signer(self, cert):
        mitm = generate_rsa_keypair(128, random.Random(14))
        swapped = substitute_public_key(cert, mitm.public, signer=mitm.private)
        assert swapped.verify_signature(signer=mitm.public)
