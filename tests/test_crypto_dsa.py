"""Tests for DSA and the nonce-reuse key recovery."""

import random

import pytest

from repro.crypto.dsa import (
    DsaSignature,
    generate_dsa_keypair,
    generate_parameters,
    recover_private_key_from_nonce_reuse,
    sign,
    verify,
)
from repro.entropy.pool import EntropyPool
from repro.numt.primality import is_probable_prime


@pytest.fixture(scope="module")
def params():
    return generate_parameters(random.Random(41), p_bits=192, q_bits=80)


@pytest.fixture(scope="module")
def keypair(params):
    return generate_dsa_keypair(params, random.Random(42))


class TestParameters:
    def test_domain_structure(self, params):
        assert is_probable_prime(params.p)
        assert is_probable_prime(params.q)
        assert (params.p - 1) % params.q == 0
        assert pow(params.g, params.q, params.p) == 1
        assert params.g > 1

    def test_rejects_inverted_sizes(self):
        with pytest.raises(ValueError):
            generate_parameters(random.Random(1), p_bits=80, q_bits=96)


class TestSignVerify:
    def test_roundtrip(self, params, keypair):
        rng = random.Random(43)
        signature = sign(keypair, b"maintenance login", rng=rng)
        assert verify(params, keypair.y, b"maintenance login", signature)

    def test_wrong_message_rejected(self, params, keypair):
        signature = sign(keypair, b"a", rng=random.Random(44))
        assert not verify(params, keypair.y, b"b", signature)

    def test_wrong_key_rejected(self, params, keypair):
        other = generate_dsa_keypair(params, random.Random(45))
        signature = sign(keypair, b"msg", rng=random.Random(46))
        assert not verify(params, other.y, b"msg", signature)

    def test_out_of_range_signature_rejected(self, params, keypair):
        assert not verify(params, keypair.y, b"m", DsaSignature(r=0, s=1))
        assert not verify(params, keypair.y, b"m", DsaSignature(r=1, s=params.q))

    def test_requires_nonce_or_rng(self, keypair):
        with pytest.raises(ValueError):
            sign(keypair, b"m")

    def test_nonce_out_of_range(self, keypair):
        with pytest.raises(ValueError):
            sign(keypair, b"m", nonce=keypair.parameters.q)


class TestNonceReuse:
    def test_shared_nonce_leaks_private_key(self, params, keypair):
        # The entropy-hole scenario: the pool state repeats, so k repeats.
        k = 0xDEADBEEF % params.q
        sig1 = sign(keypair, b"first message", nonce=k)
        sig2 = sign(keypair, b"second message", nonce=k)
        assert sig1.r == sig2.r  # the telltale repeated r
        recovered = recover_private_key_from_nonce_reuse(
            params, b"first message", sig1, b"second message", sig2
        )
        assert recovered == keypair.x

    def test_recovered_key_signs_as_victim(self, params, keypair):
        k = 12345 % params.q or 1
        sig1 = sign(keypair, b"m1", nonce=k)
        sig2 = sign(keypair, b"m2", nonce=k)
        x = recover_private_key_from_nonce_reuse(params, b"m1", sig1, b"m2", sig2)
        from repro.crypto.dsa import DsaKeyPair

        forged_keypair = DsaKeyPair(parameters=params, x=x, y=keypair.y)
        forged = sign(forged_keypair, b"forged update", rng=random.Random(47))
        assert verify(params, keypair.y, b"forged update", forged)

    def test_distinct_nonces_rejected(self, params, keypair):
        sig1 = sign(keypair, b"m1", nonce=1111)
        sig2 = sign(keypair, b"m2", nonce=2222)
        with pytest.raises(ValueError):
            recover_private_key_from_nonce_reuse(params, b"m1", sig1, b"m2", sig2)

    def test_identical_messages_uninformative(self, params, keypair):
        sig = sign(keypair, b"same", nonce=777)
        with pytest.raises(ValueError):
            recover_private_key_from_nonce_reuse(params, b"same", sig, b"same", sig)

    def test_entropy_hole_produces_reused_nonces(self, params):
        # Two devices with identical boot pools derive identical nonces —
        # the end-to-end mechanism for the DSA-only vendors.
        pool_a, pool_b = EntropyPool(), EntropyPool()
        nonce_a = int.from_bytes(pool_a.read(16), "big") % params.q or 1
        nonce_b = int.from_bytes(pool_b.read(16), "big") % params.q or 1
        assert nonce_a == nonce_b
        victim = generate_dsa_keypair(params, random.Random(48))
        sig1 = sign(victim, b"host-key-proof-1", nonce=nonce_a)
        sig2 = sign(victim, b"host-key-proof-2", nonce=nonce_b)
        assert (
            recover_private_key_from_nonce_reuse(
                params, b"host-key-proof-1", sig1, b"host-key-proof-2", sig2
            )
            == victim.x
        )
