"""Tests for prime-generation strategies and the OpenSSL property."""

import random

import pytest

from repro.crypto.primes import (
    OPENSSL_FINGERPRINT_PRIMES,
    generate_prime,
    is_openssl_style_prime,
    is_safe_prime,
    openssl_style_prime,
    safe_prime,
)
from repro.numt.primality import is_probable_prime


class TestGeneratePrime:
    def test_bit_length_and_primality(self, rng):
        for bits in (16, 48, 96):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_rejects_tiny(self, rng):
        with pytest.raises(ValueError):
            generate_prime(1, rng)

    def test_deterministic(self):
        assert generate_prime(64, random.Random(7)) == generate_prime(
            64, random.Random(7)
        )

    def test_distinct_across_draws(self, rng):
        primes = {generate_prime(64, rng) for _ in range(50)}
        assert len(primes) == 50


class TestOpensslProperty:
    def test_property_definition(self, small_openssl_table):
        # p = 2*q + 1 with q avoiding the table -> satisfies.
        p = 23  # p-1 = 22 = 2 * 11; 11 is in any odd-prime table
        assert not is_openssl_style_prime(p, small_openssl_table)

    def test_satisfying_prime(self, small_openssl_table):
        # 2^16+1 = 65537; 65536 = 2^16 has no odd factors at all.
        assert is_openssl_style_prime(65537, small_openssl_table)

    def test_generated_primes_satisfy(self, rng, small_openssl_table):
        for _ in range(10):
            p = openssl_style_prime(48, rng, small_openssl_table)
            assert is_probable_prime(p)
            assert p.bit_length() == 48
            assert is_openssl_style_prime(p, small_openssl_table)

    def test_full_table_generation(self, rng):
        p = openssl_style_prime(64, rng)
        assert is_openssl_style_prime(p, OPENSSL_FINGERPRINT_PRIMES)

    def test_random_primes_rarely_satisfy(self, rng):
        # ~7.5% of random primes satisfy the full-table property; with 60
        # samples, observing >=30 satisfying would be astronomically odd.
        count = sum(
            1
            for _ in range(60)
            if is_openssl_style_prime(generate_prime(64, rng))
        )
        assert count < 30

    def test_table_excludes_two(self):
        assert 2 not in OPENSSL_FINGERPRINT_PRIMES
        assert OPENSSL_FINGERPRINT_PRIMES[0] == 3
        assert len(OPENSSL_FINGERPRINT_PRIMES) == 2048

    def test_rejects_tiny_bits(self, rng):
        with pytest.raises(ValueError):
            openssl_style_prime(4, rng)


class TestSafePrimes:
    def test_known_safe_primes(self):
        for p in (5, 7, 11, 23, 47, 59, 83, 107):
            assert is_safe_prime(p), p

    def test_known_unsafe_primes(self):
        for p in (13, 17, 19, 29, 31, 37, 41):
            assert not is_safe_prime(p), p

    def test_composite_not_safe(self):
        assert not is_safe_prime(15)

    def test_generated_safe_prime(self, rng):
        p = safe_prime(24, rng)
        assert p.bit_length() == 24
        assert is_safe_prime(p)

    def test_rejects_tiny(self, rng):
        with pytest.raises(ValueError):
            safe_prime(2, rng)

    def test_safe_primes_satisfy_small_openssl_tables(self, rng):
        # The confound the paper checked: safe primes look like OpenSSL
        # primes, because (p-1)/2 is prime and hence avoids small factors.
        p = safe_prime(32, rng)
        table = tuple(q for q in OPENSSL_FINGERPRINT_PRIMES if q < (p - 1) // 2)
        assert is_openssl_style_prime(p, table)
