"""Tests for RSA keys, signatures, and factor-based recovery."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.primes import generate_prime
from repro.crypto.rsa import (
    RsaPublicKey,
    generate_rsa_keypair,
    keypair_from_primes,
    recover_private_key,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_rsa_keypair(128, random.Random(99))


class TestKeypairFromPrimes:
    def test_basic_structure(self, rng):
        p = generate_prime(64, rng)
        q = generate_prime(64, rng)
        pair = keypair_from_primes(p, q)
        assert pair.public.n == p * q
        assert pair.private.p == p
        assert pair.private.q == q

    def test_rejects_equal_primes(self, rng):
        p = generate_prime(64, rng)
        with pytest.raises(ValueError):
            keypair_from_primes(p, p)

    def test_private_exponent_valid(self, rng):
        p = generate_prime(48, rng)
        q = generate_prime(48, rng)
        pair = keypair_from_primes(p, q)
        lam = (p - 1) * (q - 1) // math.gcd(p - 1, q - 1)
        assert (pair.private.d * pair.private.e) % lam == 1


class TestEncryptDecrypt:
    def test_roundtrip(self, keypair):
        message = 0x1234567890ABCDEF
        assert keypair.private.decrypt(keypair.public.encrypt(message)) == message

    def test_message_out_of_range(self, keypair):
        with pytest.raises(ValueError):
            keypair.public.encrypt(keypair.public.n)
        with pytest.raises(ValueError):
            keypair.public.encrypt(-1)

    def test_ciphertext_out_of_range(self, keypair):
        with pytest.raises(ValueError):
            keypair.private.decrypt(keypair.private.n + 1)

    @given(st.integers(min_value=0, max_value=2**100))
    @settings(max_examples=30)
    def test_roundtrip_property(self, message):
        pair = generate_rsa_keypair(128, random.Random(5))
        m = message % pair.public.n
        assert pair.private.decrypt(pair.public.encrypt(m)) == m


class TestSignatures:
    def test_sign_verify(self, keypair):
        sig = keypair.private.sign(b"attack at dawn")
        assert keypair.public.verify(b"attack at dawn", sig)

    def test_wrong_message_rejected(self, keypair):
        sig = keypair.private.sign(b"attack at dawn")
        assert not keypair.public.verify(b"attack at dusk", sig)

    def test_wrong_key_rejected(self, keypair):
        other = generate_rsa_keypair(128, random.Random(100))
        sig = keypair.private.sign(b"hello")
        assert not other.public.verify(b"hello", sig)

    def test_signature_out_of_range_rejected(self, keypair):
        assert not keypair.public.verify(b"hello", keypair.public.n + 5)
        assert not keypair.public.verify(b"hello", -1)

    def test_empty_message(self, keypair):
        sig = keypair.private.sign(b"")
        assert keypair.public.verify(b"", sig)


class TestGenerateRsaKeypair:
    def test_modulus_bits(self, rng):
        pair = generate_rsa_keypair(96, rng)
        assert pair.public.n.bit_length() == 96
        assert pair.public.bits == 96

    def test_rejects_odd_bits(self, rng):
        with pytest.raises(ValueError):
            generate_rsa_keypair(129, rng)
        with pytest.raises(ValueError):
            generate_rsa_keypair(4, rng)

    def test_default_exponent(self, rng):
        assert generate_rsa_keypair(64, rng).public.e == 65537

    def test_fingerprint_stable_and_distinct(self, rng):
        a = generate_rsa_keypair(64, rng).public
        b = generate_rsa_keypair(64, rng).public
        assert a.fingerprint() == RsaPublicKey(a.n, a.e).fingerprint()
        assert a.fingerprint() != b.fingerprint()


class TestRecoverPrivateKey:
    def test_recovery_from_factor(self, rng):
        p = generate_prime(64, rng)
        q = generate_prime(64, rng)
        recovered = recover_private_key(p * q, 65537, p)
        assert {recovered.p, recovered.q} == {p, q}
        message = 0xCAFE
        assert recovered.decrypt(pow(message, 65537, p * q)) == message

    def test_recovered_key_signs(self, rng):
        p = generate_prime(64, rng)
        q = generate_prime(64, rng)
        recovered = recover_private_key(p * q, 65537, q)
        sig = recovered.sign(b"impersonation")
        assert recovered.public_key.verify(b"impersonation", sig)

    def test_rejects_non_divisor(self, rng):
        p = generate_prime(64, rng)
        q = generate_prime(64, rng)
        with pytest.raises(ValueError):
            recover_private_key(p * q, 65537, p + 2)

    def test_rejects_trivial_divisors(self, rng):
        p = generate_prime(64, rng)
        q = generate_prime(64, rng)
        n = p * q
        for bad in (1, n):
            with pytest.raises(ValueError):
                recover_private_key(n, 65537, bad)
