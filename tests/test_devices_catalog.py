"""Invariant tests over the calibrated device catalog."""

from repro.devices.catalog import DEVICE_CATALOG, catalog_models, models_for_vendor
from repro.devices.models import KeygenKind
from repro.devices.vendors import VENDORS
from repro.timeline import HEARTBLEED, STUDY_END, STUDY_START, Month


class TestCatalogIntegrity:
    def test_model_ids_unique(self):
        ids = [m.model_id for m in DEVICE_CATALOG]
        assert len(ids) == len(set(ids))

    def test_catalog_models_accessor_returns_full_catalog(self):
        assert catalog_models() == DEVICE_CATALOG

    def test_every_vendor_registered(self):
        for model in DEVICE_CATALOG:
            assert model.vendor in VENDORS, model.vendor

    def test_schedule_knots_ordered_and_in_window(self):
        for model in DEVICE_CATALOG:
            months = [m for m, _ in model.schedule.points]
            assert months == sorted(months), model.model_id
            assert all(STUDY_START <= m <= STUDY_END for m in months), model.model_id

    def test_openssl_style_matches_registry(self):
        # The catalog's keygen style must agree with Table 5's truth.
        for model in DEVICE_CATALOG:
            expected = VENDORS[model.vendor].uses_openssl
            if expected is None or model.keygen.kind is KeygenKind.HEALTHY:
                continue
            if model.keygen.kind is KeygenKind.FIXED_IBM_MODULUS:
                continue  # borrows IBM's primes, not the vendor's own
            assert model.keygen.openssl_style == expected, model.model_id

    def test_vulnerable_fractions_valid(self):
        for model in DEVICE_CATALOG:
            assert 0.0 <= model.keygen.vulnerable_fraction <= 1.0, model.model_id


class TestPaperSpecifics:
    def test_juniper_not_openssl(self):
        (juniper,) = models_for_vendor("Juniper")
        assert not juniper.keygen.openssl_style

    def test_ibm_is_nine_prime(self):
        (ibm,) = models_for_vendor("IBM")
        assert ibm.keygen.kind is KeygenKind.IBM_NINE_PRIME

    def test_siemens_overlap_model_uses_ibm_pool(self):
        models = {m.model_id: m for m in models_for_vendor("Siemens")}
        overlap = models["siemens-building-ibm"]
        assert overlap.keygen.kind is KeygenKind.FIXED_IBM_MODULUS
        assert overlap.keygen.profile_id == "ibm-rsa2"
        # The overlap begins February 2013 (Section 3.3.2).
        assert overlap.keygen.vulnerable_from == Month(2013, 2)

    def test_dell_and_xerox_share_prime_pool(self):
        (dell,) = models_for_vendor("Dell")
        (xerox,) = models_for_vendor("Xerox")
        assert dell.keygen.profile_id == xerox.keygen.profile_id

    def test_cisco_models_have_figure7_eols(self):
        cisco = {m.display_model: m for m in models_for_vendor("Cisco")}
        assert set(cisco) == {
            "RV082", "RV120W", "RV220W", "RV180/180W", "SA520/540",
        }
        with_eol = [m for m in cisco.values() if m.eol is not None]
        assert len(with_eol) == 5
        for model in with_eol:
            # EOL announcement precedes end-of-sale by several months.
            assert model.end_of_sale is not None
            assert 3 <= model.end_of_sale - model.eol <= 9

    def test_rv082_has_no_vulnerable_hosts(self):
        # "We identified vulnerable hosts associated with all the device
        # models in this figure except the RV082."
        cisco = {m.display_model: m for m in models_for_vendor("Cisco")}
        assert cisco["RV082"].keygen.kind is KeygenKind.HEALTHY

    def test_newly_vulnerable_windows_start_late(self):
        # Figure 10 vendors became vulnerable well after the 2012 disclosure.
        for vendor_name in ("Huawei", "ADTRAN", "Sangfor", "Schmid Telecom"):
            models = models_for_vendor(vendor_name)
            assert models, vendor_name
            for model in models:
                start = model.keygen.vulnerable_from
                assert start is not None and start >= Month(2014, 1), vendor_name

    def test_huawei_first_vulnerable_april_2015(self):
        (huawei,) = models_for_vendor("Huawei")
        assert huawei.keygen.vulnerable_from == Month(2015, 4)

    def test_heartbleed_shocks_where_paper_observed_them(self):
        shocked = {
            m.vendor for m in DEVICE_CATALOG if m.heartbleed.offline_fraction > 0
        }
        assert {"Juniper", "IBM", "HP"} <= shocked

    def test_juniper_schedule_drops_at_heartbleed(self):
        (juniper,) = models_for_vendor("Juniper")
        before = juniper.schedule.target(HEARTBLEED + (-1), 1)
        after = juniper.schedule.target(HEARTBLEED + 1, 1)
        assert after < before * 0.75
