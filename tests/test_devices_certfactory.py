"""Tests for per-vendor certificate conventions."""

import random

import pytest

from repro.crypto.rsa import generate_rsa_keypair
from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.certfactory import build_certificate, format_ip
from repro.devices.models import SubjectStyle
from repro.timeline import Month


@pytest.fixture(scope="module")
def keypair():
    return generate_rsa_keypair(96, random.Random(55))


def model_with_style(style):
    for model in DEVICE_CATALOG:
        if model.subject_style is style:
            return model
    raise AssertionError(f"no catalog model with style {style}")


def build(model, keypair, rng, ip=0x0A0B0C0D):
    return build_certificate(model, keypair, ip, Month(2012, 6), rng)


class TestFormatIp:
    def test_dotted_quad(self):
        assert format_ip(0x0A0B0C0D) == "10.11.12.13"
        assert format_ip(0) == "0.0.0.0"
        assert format_ip(0xFFFFFFFF) == "255.255.255.255"


class TestSubjectConventions:
    def test_juniper_system_generated(self, keypair, rng):
        model = model_with_style(SubjectStyle.SYSTEM_GENERATED)
        cert = build(model, keypair, rng)
        assert cert.subject.CN == "system generated"
        assert cert.subject.O == ""

    def test_cisco_model_in_ou(self, keypair, rng):
        model = model_with_style(SubjectStyle.MODEL_IN_OU)
        cert = build(model, keypair, rng)
        assert cert.subject.O == model.vendor
        assert cert.subject.OU == model.display_model

    def test_vendor_in_o(self, keypair, rng):
        model = model_with_style(SubjectStyle.VENDOR_IN_O)
        cert = build(model, keypair, rng)
        assert cert.subject.O == model.vendor

    def test_mcafee_all_defaults(self, keypair, rng):
        model = model_with_style(SubjectStyle.DEFAULT_NAMES)
        cert = build(model, keypair, rng)
        assert cert.subject.CN == "Default Common Name"
        assert cert.subject.O == "Default Organization"
        assert cert.subject.OU == "Default Unit"

    def test_fritz_variants(self, keypair):
        model = model_with_style(SubjectStyle.FRITZ_DOMAIN)
        rng = random.Random(1)
        seen_ip_only = seen_myfritz = seen_san = False
        for _ in range(60):
            cert = build(model, keypair, rng)
            if cert.subject.CN.endswith(".myfritz.net"):
                seen_myfritz = True
            elif cert.subject.CN == "fritz.box":
                assert "fritz.fonwlan.box" in cert.subject_alt_names
                seen_san = True
            else:
                # IP-only subjects: four dotted octets.
                assert cert.subject.CN.count(".") == 3
                seen_ip_only = True
        assert seen_ip_only and seen_myfritz and seen_san

    def test_ibm_cards_carry_owner_not_ibm(self, keypair, rng):
        model = model_with_style(SubjectStyle.OWNER_NAMED)
        cert = build(model, keypair, rng)
        assert "IBM" not in cert.subject.rfc4514()
        assert cert.subject.O  # some owner organisation

    def test_dell_imaging_group(self, keypair, rng):
        model = model_with_style(SubjectStyle.DELL_IMAGING)
        cert = build(model, keypair, rng)
        assert cert.subject.OU == "Dell Imaging Group"

    def test_siemens_subject(self, keypair, rng):
        model = model_with_style(SubjectStyle.SIEMENS_BUILDING)
        cert = build(model, keypair, rng)
        assert "Siemens" in cert.subject.O


class TestCertificateProperties:
    def test_self_signed_and_valid(self, keypair, rng):
        model = DEVICE_CATALOG[0]
        cert = build(model, keypair, rng)
        assert cert.is_self_signed
        assert cert.verify_signature()

    def test_validity_starts_in_deploy_month(self, keypair, rng):
        cert = build_certificate(
            DEVICE_CATALOG[0], keypair, 1, Month(2013, 5), rng
        )
        assert cert.not_before.year == 2013
        assert cert.not_before.month == 5

    def test_long_lived(self, keypair, rng):
        cert = build(DEVICE_CATALOG[0], keypair, rng)
        assert cert.not_after.year - cert.not_before.year >= 10

    def test_serials_distinct(self, keypair, rng):
        certs = [build(DEVICE_CATALOG[0], keypair, rng) for _ in range(10)]
        assert len({c.serial for c in certs}) == 10
