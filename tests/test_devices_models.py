"""Tests for device-model specifications and population schedules."""


from repro.devices.models import (
    HeartbleedBehavior,
    KeygenKind,
    KeygenSpec,
    PopulationSchedule,
)
from repro.timeline import Month


class TestPopulationSchedule:
    def make(self):
        return PopulationSchedule(
            points=(
                (Month(2011, 1), 10_000),
                (Month(2011, 11), 20_000),
                (Month(2012, 11), 8_000),
            )
        )

    def test_before_first_knot_is_zero(self):
        assert self.make().target(Month(2010, 6), scale=1) == 0

    def test_at_knots(self):
        schedule = self.make()
        assert schedule.target(Month(2011, 1), 1) == 10_000
        assert schedule.target(Month(2011, 11), 1) == 20_000
        assert schedule.target(Month(2012, 11), 1) == 8_000

    def test_linear_interpolation(self):
        schedule = self.make()
        # Half way between 10k and 20k over 10 months.
        assert schedule.target(Month(2011, 6), 1) == 15_000

    def test_held_after_last_knot(self):
        assert self.make().target(Month(2015, 1), 1) == 8_000

    def test_scaling(self):
        schedule = self.make()
        assert schedule.target(Month(2011, 1), scale=100) == 100
        assert schedule.target(Month(2011, 6), scale=1000) == 15

    def test_empty_schedule(self):
        assert PopulationSchedule(points=()).target(Month(2012, 1), 1) == 0

    def test_declining_segment(self):
        schedule = self.make()
        assert schedule.target(Month(2012, 5), 1) == 14_000


class TestKeygenSpec:
    def test_healthy_never_in_window(self):
        spec = KeygenSpec(kind=KeygenKind.HEALTHY, profile_id="x")
        assert not spec.window_contains(Month(2012, 1))

    def test_unbounded_window(self):
        spec = KeygenSpec(kind=KeygenKind.SHARED_PRIME, profile_id="x")
        assert spec.window_contains(Month(2010, 7))
        assert spec.window_contains(Month(2016, 5))

    def test_window_from(self):
        spec = KeygenSpec(
            kind=KeygenKind.SHARED_PRIME, profile_id="x",
            vulnerable_from=Month(2015, 4),
        )
        assert not spec.window_contains(Month(2015, 3))
        assert spec.window_contains(Month(2015, 4))

    def test_window_until(self):
        spec = KeygenSpec(
            kind=KeygenKind.SHARED_PRIME, profile_id="x",
            vulnerable_until=Month(2012, 7),
        )
        assert spec.window_contains(Month(2012, 7))
        assert not spec.window_contains(Month(2012, 8))

    def test_bounded_window(self):
        spec = KeygenSpec(
            kind=KeygenKind.SHARED_PRIME, profile_id="x",
            vulnerable_from=Month(2013, 1), vulnerable_until=Month(2014, 1),
        )
        assert not spec.window_contains(Month(2012, 12))
        assert spec.window_contains(Month(2013, 6))
        assert not spec.window_contains(Month(2014, 2))


class TestHeartbleedBehavior:
    def test_defaults_are_inert(self):
        behavior = HeartbleedBehavior()
        assert behavior.offline_fraction == 0.0
        assert behavior.patch_fraction == 0.0
        assert behavior.vulnerable_bias == 1.0
