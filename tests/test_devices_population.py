"""Tests for population dynamics: deploy, retire, churn, Heartbleed."""

import random

import pytest

from repro.devices.catalog import models_for_vendor
from repro.devices.models import (
    DeviceModel,
    HeartbleedBehavior,
    KeygenKind,
    KeygenSpec,
    PopulationSchedule,
    SubjectStyle,
)
from repro.devices.population import (
    DivisorLimits,
    IpAllocator,
    ModelPopulation,
    resolve_divisor,
)
from repro.entropy.keygen import WeakKeyFactory
from repro.timeline import HEARTBLEED, Month


def make_model(**overrides):
    defaults = dict(
        model_id="test-model",
        vendor="Juniper",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="test-model",
            boot_states=4,
            openssl_style=False,
            vulnerable_fraction=1.0,
        ),
        schedule=PopulationSchedule(
            points=((Month(2011, 1), 50), (Month(2013, 1), 100)),
        ),
    )
    defaults.update(overrides)
    return DeviceModel(**defaults)


@pytest.fixture
def factory(small_openssl_table):
    return WeakKeyFactory(seed=3, prime_bits=48, openssl_table=small_openssl_table)


def make_population(model, factory, **kwargs):
    return ModelPopulation(
        model=model,
        divisor=kwargs.pop("divisor", 1),
        factory=factory,
        allocator=IpAllocator(random.Random(1)),
        rng=random.Random(2),
        **kwargs,
    )


class TestIpAllocator:
    def test_unique_allocations(self):
        allocator = IpAllocator(random.Random(1))
        ips = {allocator.allocate() for _ in range(500)}
        assert len(ips) == 500

    def test_released_addresses_can_be_reused(self):
        allocator = IpAllocator(random.Random(2), reuse_probability=1.0)
        ip = allocator.allocate()
        allocator.release(ip)
        assert allocator.allocate() == ip

    def test_no_reuse_when_probability_zero(self):
        allocator = IpAllocator(random.Random(3), reuse_probability=0.0)
        ip = allocator.allocate()
        allocator.release(ip)
        assert allocator.allocate() != ip


class TestResolveDivisor:
    def test_large_fleet_capped_by_max_sim(self):
        model = make_model(
            schedule=PopulationSchedule(points=((Month(2011, 1), 1_000_000),)),
            keygen=KeygenSpec(kind=KeygenKind.HEALTHY, profile_id="x"),
        )
        limits = DivisorLimits(device_scale=100, max_total_sim=2000)
        divisor = resolve_divisor(model, limits)
        assert 1_000_000 / divisor <= 2000 + 1

    def test_small_weak_fleet_lowers_divisor(self):
        model = make_model(
            schedule=PopulationSchedule(points=((Month(2011, 1), 100_000),)),
            keygen=KeygenSpec(
                kind=KeygenKind.SHARED_PRIME, profile_id="x",
                vulnerable_fraction=0.001,  # ~100 weak at paper scale
            ),
        )
        limits = DivisorLimits(device_scale=1000, min_weak_sim=20)
        divisor = resolve_divisor(model, limits)
        # Needs divisor <= 5 to keep 20 weak units, but the total cap wins:
        # 100k units can't be simulated 1:5 under max_total_sim.
        assert divisor == max(1, round(100_000 / limits.max_total_sim))

    def test_empty_schedule(self):
        model = make_model(schedule=PopulationSchedule(points=()))
        assert resolve_divisor(model, DivisorLimits()) == 1


class TestPopulationTracking:
    def test_tracks_target(self, factory):
        model = make_model()
        population = make_population(model, factory)
        for month in Month.range(Month(2011, 1), Month(2013, 1)):
            population.step(month)
        assert abs(population.online_count() - 100) <= 5

    def test_zero_before_first_knot(self, factory):
        population = make_population(make_model(), factory)
        population.step(Month(2010, 7))
        assert population.online_count() == 0

    def test_decline_retires_devices(self, factory):
        model = make_model(
            schedule=PopulationSchedule(
                points=((Month(2011, 1), 100), (Month(2012, 1), 20)),
            )
        )
        population = make_population(model, factory)
        for month in Month.range(Month(2011, 1), Month(2012, 1)):
            population.step(month)
        assert abs(population.online_count() - 20) <= 4
        assert len(population.retired) >= 70

    def test_devices_ever_includes_retired(self, factory):
        model = make_model(
            schedule=PopulationSchedule(
                points=((Month(2011, 1), 50), (Month(2011, 6), 10)),
            )
        )
        population = make_population(model, factory)
        for month in Month.range(Month(2011, 1), Month(2011, 6)):
            population.step(month)
        assert len(population.devices_ever()) >= 50


class TestWeakDeployment:
    def test_all_weak_when_fraction_one(self, factory):
        population = make_population(make_model(), factory)
        population.step(Month(2011, 1))
        assert population.weak_online_count() == population.online_count()

    def test_window_limits_weak_deployments(self, factory):
        model = make_model(
            keygen=KeygenSpec(
                kind=KeygenKind.SHARED_PRIME, profile_id="w",
                boot_states=4, vulnerable_until=Month(2011, 6),
                vulnerable_fraction=1.0, openssl_style=False,
            ),
            schedule=PopulationSchedule(
                points=((Month(2011, 1), 20), (Month(2012, 6), 120)),
                churn_rate=0.0,
            ),
        )
        population = make_population(model, factory)
        for month in Month.range(Month(2011, 1), Month(2012, 6)):
            population.step(month)
        weak = population.weak_online_count()
        assert 0 < weak < population.online_count()

    def test_weak_moduli_emitted_tracks_regenerations(self, factory):
        model = make_model(
            schedule=PopulationSchedule(
                points=((Month(2011, 1), 30),), cert_regen_rate=0.5,
            )
        )
        population = make_population(model, factory)
        for month in Month.range(Month(2011, 1), Month(2011, 8)):
            population.step(month)
        # Regeneration creates fresh weak keys beyond the 30 live ones.
        assert len(population.weak_moduli_emitted) > 30


class TestHeartbleedShock:
    def make_shocked(self, factory, offline=0.5, bias=1.0, patch=0.0):
        model = make_model(
            schedule=PopulationSchedule(
                points=((Month(2013, 1), 200),), churn_rate=0.0,
            ),
            heartbleed=HeartbleedBehavior(
                offline_fraction=offline, vulnerable_bias=bias,
                patch_fraction=patch,
            ),
        )
        population = make_population(model, factory)
        for month in Month.range(Month(2013, 1), HEARTBLEED + (-1)):
            population.step(month)
        return population

    def test_offline_wave(self, factory):
        population = self.make_shocked(factory, offline=0.5)
        before = population.online_count()
        population._apply_heartbleed(HEARTBLEED)
        after = population.online_count()
        assert after < before
        assert abs((before - after) / before - 0.5) < 0.15

    def test_patch_wave_heals_survivors(self, factory):
        population = self.make_shocked(factory, offline=0.0, patch=1.0)
        population._apply_heartbleed(HEARTBLEED)
        assert population.weak_online_count() == 0

    def test_inert_behavior_no_change(self, factory):
        population = self.make_shocked(factory, offline=0.0, patch=0.0)
        before = population.online_count()
        population._apply_heartbleed(HEARTBLEED)
        assert population.online_count() == before


class TestCertRegeneration:
    def test_regen_changes_key_and_cert(self, factory):
        model = make_model(
            schedule=PopulationSchedule(
                points=((Month(2011, 1), 20),), cert_regen_rate=1.0,
                churn_rate=0.0, ip_churn_rate=0.0,
            )
        )
        population = make_population(model, factory)
        population.step(Month(2011, 1))
        before = {d.device_id: d.certificate.fingerprint() for d in population.online}
        population.step(Month(2011, 2))
        after = {d.device_id: d.certificate.fingerprint() for d in population.online}
        changed = sum(1 for k in before if before[k] != after.get(k))
        assert changed == len(before)

    def test_ip_churn_keeps_certificate(self, factory):
        model = make_model(
            schedule=PopulationSchedule(
                points=((Month(2011, 1), 20),), ip_churn_rate=1.0,
                churn_rate=0.0, cert_regen_rate=0.0,
            )
        )
        population = make_population(model, factory)
        population.step(Month(2011, 1))
        before = {d.device_id: (d.ip, d.certificate.fingerprint())
                  for d in population.online}
        population.step(Month(2011, 2))
        for device in population.online:
            old_ip, old_cert = before[device.device_id]
            assert device.ip != old_ip
            assert device.certificate.fingerprint() == old_cert


class TestFixedIbmModulus:
    def test_all_devices_share_one_modulus(self, factory):
        (overlap,) = [
            m for m in models_for_vendor("Siemens")
            if m.keygen.kind is KeygenKind.FIXED_IBM_MODULUS
        ]
        population = ModelPopulation(
            model=overlap,
            divisor=1,
            factory=factory,
            allocator=IpAllocator(random.Random(4)),
            rng=random.Random(5),
        )
        for month in Month.range(Month(2013, 2), Month(2013, 8)):
            population.step(month)
        moduli = {d.key.keypair.public.n for d in population.online}
        assert len(moduli) == 1
        certs = {d.certificate.fingerprint() for d in population.online}
        assert len(certs) == len(population.online)  # distinct certificates
