"""Tests for the vendor registry (Tables 2 and 5 ground truth)."""

import pytest

from repro.devices.vendors import (
    VENDORS,
    ResponseCategory,
    notified_2012_vendors,
    vendor,
    vendors_in_category,
)
from repro.timeline import Month


class TestRegistryShape:
    def test_37_vendors_notified_2012(self):
        # Table 2: "37 vendors were notified via email in February and March
        # 2012 about weak TLS or SSH RSA key generation".
        assert len(notified_2012_vendors()) == 37

    def test_exactly_five_public_advisories(self):
        # "Only five released a public security advisory."
        advisories = vendors_in_category(ResponseCategory.PUBLIC_ADVISORY)
        assert {v.name for v in advisories} == {
            "Juniper", "Innominate", "IBM", "Intel", "Tropos",
        }

    def test_figure9_vendors_did_not_respond(self):
        # Section 4.3 / Figure 9's HTTPS-fingerprint owners.
        for name in ("ZyXEL", "McAfee", "TP-LINK", "Fortinet", "Dell",
                     "Kronos", "Xerox", "Linksys", "AVM", "D-Link"):
            assert vendor(name).response is ResponseCategory.NO_RESPONSE, name

    def test_newly_notified_2016(self):
        # Section 4.4's re-notification set.
        names = {v.name for v in vendors_in_category(ResponseCategory.NOTIFIED_2016)}
        assert names == {"Huawei", "ADTRAN", "Sangfor", "Schmid Telecom"}

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            vendor("Nonexistent Corp")


class TestAdvisoryDates:
    def test_juniper_advisory_april_2012(self):
        assert vendor("Juniper").advisory == Month(2012, 4)

    def test_innominate_advisory_june_2012(self):
        assert vendor("Innominate").advisory == Month(2012, 6)

    def test_ibm_advisory_september_2012(self):
        assert vendor("IBM").advisory == Month(2012, 9)

    def test_huawei_advisory_august_2016(self):
        assert vendor("Huawei").advisory == Month(2016, 8)

    def test_no_response_vendors_have_no_advisory(self):
        for v in vendors_in_category(ResponseCategory.NO_RESPONSE):
            assert v.advisory is None, v.name


class TestOpensslClassification:
    def test_table5_satisfy_column(self):
        # Spot-check Table 5's "satisfy OpenSSL fingerprint" column.
        for name in ("Cisco", "IBM", "Innominate", "McAfee", "Linksys",
                     "D-Link", "Dell", "HP", "TP-LINK", "Netgear",
                     "Fritz!Box", "Thomson", "Sangfor"):
            assert VENDORS[name].uses_openssl is True, name

    def test_table5_do_not_satisfy_column(self):
        for name in ("Juniper", "Fortinet", "Huawei", "Kronos", "Siemens",
                     "Xerox", "ZyXEL", "DrayTek"):
            assert VENDORS[name].uses_openssl is False, name

    def test_reconstructed_entries_flagged(self):
        # Ambiguous Table 2 placements must be marked as reconstructions.
        assert VENDORS["Pogoplug"].reconstructed
        assert VENDORS["Brocade"].reconstructed
        assert not VENDORS["Juniper"].reconstructed
        assert not VENDORS["Cisco"].reconstructed
