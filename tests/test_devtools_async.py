"""Async coloring, CFG/dataflow, and the ASY/XTNT rule family.

Graph-level tests drive :func:`repro.devtools.graph.build_graph` over
scratch trees and assert on the event-loop coloring itself; rule-level
tests drive the real CLI entry point the same way CI does, so the full
pipeline (graph -> coloring -> rules -> suppression -> exit code) is
exercised end to end.  SARIF and ``--changed-only`` round out the CLI
surface added alongside the rules.
"""

import ast
import json
import os
import subprocess
import textwrap

import pytest

from repro.devtools import dataflow
from repro.devtools import graph as graphmod
from repro.devtools.findings import Finding, Severity
from repro.devtools.lint import main
from repro.devtools.sarif import SARIF_VERSION, sarif_payload


def write(root, relative, content):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(content))
    return path


def build(root, *relatives):
    return graphmod.build_graph([root / rel for rel in relatives], root=root)


# ---------------------------------------------------------------------------
# Event-loop coloring on the whole-program graph
# ---------------------------------------------------------------------------

SVC = """
    import asyncio
    import functools
    import time


    async def handler():
        direct()
        await asyncio.to_thread(offloaded)
        await asyncio.to_thread(functools.partial(partialed, 1))
        register(observed)


    def direct():
        time.sleep(0.1)


    def offloaded():
        time.sleep(0.1)


    def partialed(n):
        return n


    def observed():
        return 1


    def register(callback):
        return callback
    """


class TestAsyncColoring:
    def test_sync_callee_inherits_the_async_root(self, tmp_path):
        write(tmp_path, "src/repro/svc.py", SVC)
        graph = build(tmp_path, "src/repro/svc.py")
        origins = graph.async_origins()
        assert origins["repro.svc.handler"] == "repro.svc.handler"
        assert origins["repro.svc.direct"] == "repro.svc.handler"

    def test_to_thread_target_is_not_colored(self, tmp_path):
        write(tmp_path, "src/repro/svc.py", SVC)
        graph = build(tmp_path, "src/repro/svc.py")
        origins = graph.async_origins()
        assert "repro.svc.offloaded" not in origins
        assert "repro.svc.offloaded" in graph.functions["repro.svc.handler"].offloads

    def test_partial_offload_unwraps_to_its_function(self, tmp_path):
        write(tmp_path, "src/repro/svc.py", SVC)
        graph = build(tmp_path, "src/repro/svc.py")
        assert "repro.svc.partialed" in graph.functions["repro.svc.handler"].offloads
        assert "repro.svc.partialed" not in graph.async_origins()

    def test_callable_passed_to_plain_consumer_is_colored(self, tmp_path):
        """A callable handed to a non-offload call may run on the loop."""
        write(tmp_path, "src/repro/svc.py", SVC)
        graph = build(tmp_path, "src/repro/svc.py")
        origins = graph.async_origins()
        assert origins["repro.svc.register"] == "repro.svc.handler"
        assert origins["repro.svc.observed"] == "repro.svc.handler"

    def test_run_in_executor_target_is_not_colored(self, tmp_path):
        write(
            tmp_path,
            "src/repro/exec.py",
            """
            import asyncio


            async def handler(loop):
                await loop.run_in_executor(None, work)


            def work():
                return 1
            """,
        )
        graph = build(tmp_path, "src/repro/exec.py")
        assert "repro.exec.work" not in graph.async_origins()

    def test_pool_submit_target_is_not_colored(self, tmp_path):
        write(
            tmp_path,
            "src/repro/pooled.py",
            """
            async def handler(pool):
                pool.submit(work, 1)


            def work(n):
                return n
            """,
        )
        graph = build(tmp_path, "src/repro/pooled.py")
        assert "repro.pooled.work" not in graph.async_origins()

    def test_route_decorated_handler_flag(self, tmp_path):
        write(
            tmp_path,
            "src/repro/web.py",
            """
            def route(method, pattern):
                def deco(fn):
                    return fn
                return deco


            @route("GET", "/healthz")
            async def health(request):
                return {}


            async def helper():
                return {}
            """,
        )
        graph = build(tmp_path, "src/repro/web.py")
        assert graph.functions["repro.web.health"].route_decorated
        assert not graph.functions["repro.web.helper"].route_decorated

    def test_coloring_is_deterministic_across_cache_refresh(self, tmp_path):
        target = write(tmp_path, "src/repro/svc.py", SVC)
        first = build(tmp_path, "src/repro/svc.py")
        origins_first = dict(first.async_origins())
        payload_first = first.to_json()
        # Same content, bumped mtime: the per-file cache misses and the
        # module is re-parsed and re-colored from scratch.
        stat = target.stat()
        os.utime(target, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
        second = build(tmp_path, "src/repro/svc.py")
        assert second is not first
        assert dict(second.async_origins()) == origins_first
        assert second.to_json() == payload_first

    def test_payload_carries_async_facts(self, tmp_path):
        write(tmp_path, "src/repro/svc.py", SVC)
        payload = json.loads(build(tmp_path, "src/repro/svc.py").to_json())
        assert payload["schema_version"] == 3
        assert payload["async_roots"] == ["repro.svc.handler"]
        assert "repro.svc.direct" in payload["async_colored"]
        assert "repro.svc.offloaded" in payload["offload_boundaries"]
        assert "repro.svc.offloaded" not in payload["async_colored"]


# ---------------------------------------------------------------------------
# CFG/dataflow unit level
# ---------------------------------------------------------------------------


def _parse_fn(source):
    return ast.parse(textwrap.dedent(source)).body[0]


class TestRmwHazards:
    def test_read_await_write_is_flagged(self):
        fn = _parse_fn(
            """
            async def bump(self):
                n = self._n
                await asyncio.sleep(0)
                self._n = n + 1
            """
        )
        (hazard,) = dataflow.rmw_hazards(fn, set())
        assert hazard.name == "self._n"
        assert hazard.read_line < hazard.await_line < hazard.write_line

    def test_lock_guard_exempts(self):
        fn = _parse_fn(
            """
            async def bump(self):
                async with self._lock:
                    n = self._n
                    await asyncio.sleep(0)
                    self._n = n + 1
            """
        )
        assert dataflow.rmw_hazards(fn, set()) == []

    def test_single_swap_is_clean(self):
        """The stop()-style synchronous swap before the await is fine."""
        fn = _parse_fn(
            """
            async def stop(self):
                server, self._server = self._server, None
                if server is not None:
                    await server.wait_closed()
            """
        )
        assert dataflow.rmw_hazards(fn, set()) == []

    def test_mutable_global_counts_as_shared(self):
        fn = _parse_fn(
            """
            async def tick():
                n = COUNTS["tick"]
                await asyncio.sleep(0)
                COUNTS["tick"] = n + 1
            """
        )
        assert dataflow.rmw_hazards(fn, set()) == []  # not known shared
        (hazard,) = dataflow.rmw_hazards(fn, {"COUNTS"})
        assert hazard.name == "COUNTS"


class TestTaintFindings:
    @staticmethod
    def _resolve(raw):
        return raw

    def test_hex_parse_sink(self):
        fn = _parse_fn(
            """
            async def get_job(job_id):
                return int(job_id, 16)
            """
        )
        (finding,) = dataflow.taint_findings(fn, self._resolve)
        assert finding.source == "job_id"
        assert "int(" in finding.sink

    def test_path_sink(self):
        fn = _parse_fn(
            """
            async def fetch(name, base):
                return base / Path(name)
            """
        )
        findings = dataflow.taint_findings(fn, self._resolve)
        assert findings and findings[0].source in {"name", "base"}

    def test_validator_clears_taint(self):
        fn = _parse_fn(
            """
            async def get_job(job_id):
                checked = validate_job_id(job_id)
                return int(checked, 16)
            """
        )
        assert dataflow.taint_findings(fn, self._resolve) == []

    def test_taint_survives_a_loop_header(self):
        """Entry seeding must reach functions whose CFG starts in a loop."""
        fn = _parse_fn(
            """
            async def drain(names):
                for name in names:
                    open(name)
            """
        )
        assert dataflow.taint_findings(fn, self._resolve)


class TestFunctionAt:
    def test_finds_method_by_def_line(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            """
            class Box:
                async def get(self):
                    return self.value
            """,
        )
        fn = dataflow.function_at(str(path), 3)
        assert fn is not None and fn.name == "get"
        assert dataflow.function_at(str(path), 999) is None


# ---------------------------------------------------------------------------
# The rules end to end, through the CLI
# ---------------------------------------------------------------------------


@pytest.fixture()
def tree(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "src" / "repro").mkdir(parents=True)
    return tmp_path


def lint_rules(capsys):
    """Run the CLI over src and return the set of new finding codes."""
    main(["src", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    return {finding["rule"] for finding in payload["findings"]}


class TestAsy001:
    def test_blocking_call_reachable_from_async(self, tree, capsys):
        write(
            tree,
            "src/repro/svc.py",
            """
            import time


            async def _handler():
                return _work()


            def _work():
                time.sleep(0.2)
                return 1
            """,
        )
        assert "ASY001" in lint_rules(capsys)

    def test_offloaded_call_is_clean(self, tree, capsys):
        write(
            tree,
            "src/repro/svc.py",
            """
            import asyncio
            import time


            async def _handler():
                return await asyncio.to_thread(_work)


            def _work():
                time.sleep(0.2)
                return 1
            """,
        )
        assert "ASY001" not in lint_rules(capsys)

    def test_inline_suppression(self, tree, capsys):
        write(
            tree,
            "src/repro/svc.py",
            """
            import time


            async def _handler():
                return _work()


            def _work():
                time.sleep(0.2)  # reprolint: disable=ASY001
                return 1
            """,
        )
        assert "ASY001" not in lint_rules(capsys)


class TestAsy002:
    def test_bare_call_to_async_def(self, tree, capsys):
        write(
            tree,
            "src/repro/svc.py",
            """
            async def _job():
                return 1


            def _kick():
                _job()
            """,
        )
        assert "ASY002" in lint_rules(capsys)

    def test_awaited_call_is_clean(self, tree, capsys):
        write(
            tree,
            "src/repro/svc.py",
            """
            async def _job():
                return 1


            async def _kick():
                return await _job()
            """,
        )
        assert "ASY002" not in lint_rules(capsys)


class TestAsy003:
    def test_discarded_task_handle(self, tree, capsys):
        write(
            tree,
            "src/repro/svc.py",
            """
            import asyncio


            async def _job():
                return 1


            async def _go():
                asyncio.create_task(_job())
            """,
        )
        assert "ASY003" in lint_rules(capsys)

    def test_kept_handle_is_clean(self, tree, capsys):
        write(
            tree,
            "src/repro/svc.py",
            """
            import asyncio


            async def _job():
                return 1


            async def _go():
                task = asyncio.create_task(_job())
                await task
            """,
        )
        assert "ASY003" not in lint_rules(capsys)


class TestAsy004:
    def test_unlocked_rmw_across_await(self, tree, capsys):
        write(
            tree,
            "src/repro/svc.py",
            """
            import asyncio


            class _Counter:
                def __init__(self):
                    self._n = 0

                async def bump(self):
                    n = self._n
                    await asyncio.sleep(0)
                    self._n = n + 1
            """,
        )
        assert "ASY004" in lint_rules(capsys)

    def test_locked_rmw_is_clean(self, tree, capsys):
        write(
            tree,
            "src/repro/svc.py",
            """
            import asyncio


            class _Counter:
                def __init__(self):
                    self._n = 0
                    self._lock = asyncio.Lock()

                async def bump(self):
                    async with self._lock:
                        n = self._n
                        await asyncio.sleep(0)
                        self._n = n + 1
            """,
        )
        assert "ASY004" not in lint_rules(capsys)


class TestXtnt001:
    def test_unvalidated_field_reaches_hex_parse(self, tree, capsys):
        write(
            tree,
            "src/repro/web.py",
            """
            def route(method, pattern):
                def deco(fn):
                    return fn
                return deco


            @route("GET", "/v1/jobs/<job_id>")
            async def _get_job(job_id):
                return int(job_id, 16)
            """,
        )
        rules = lint_rules(capsys)
        assert "PARSE" not in rules
        assert "XTNT001" in rules

    def test_validated_field_is_clean(self, tree, capsys):
        write(
            tree,
            "src/repro/web.py",
            """
            def route(method, pattern):
                def deco(fn):
                    return fn
                return deco


            @route("GET", "/v1/jobs/<job_id>")
            async def _get_job(job_id):
                checked = _validate_job_id(job_id)
                return int(checked, 16)


            def _validate_job_id(value):
                return value
            """,
        )
        rules = lint_rules(capsys)
        assert "PARSE" not in rules
        assert "XTNT001" not in rules

    def test_undecorated_helper_params_are_trusted(self, tree, capsys):
        write(
            tree,
            "src/repro/web.py",
            """
            async def _lookup(job_id):
                return int(job_id, 16)
            """,
        )
        assert "XTNT001" not in lint_rules(capsys)


# ---------------------------------------------------------------------------
# SARIF export
# ---------------------------------------------------------------------------


class TestSarif:
    def test_payload_matches_the_2_1_0_shape(self):
        finding = Finding(
            rule="ASY001",
            path="src/repro/svc.py",
            line=12,
            col=4,
            message="blocking call",
            severity=Severity.ERROR,
            line_text="time.sleep(0.2)",
        )
        payload = sarif_payload([finding])
        assert payload["version"] == SARIF_VERSION == "2.1.0"
        assert payload["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = payload["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        codes = [rule["id"] for rule in driver["rules"]]
        assert codes == sorted(codes)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in {"error", "warning"}
        (result,) = run["results"]
        assert result["ruleId"] == "ASY001"
        assert result["level"] == "error"
        assert driver["rules"][result["ruleIndex"]]["id"] == "ASY001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/svc.py"
        assert location["region"] == {"startLine": 12, "startColumn": 5}

    def test_cli_emits_sarif_and_keeps_exit_semantics(self, tree, capsys):
        write(tree, "src/repro/bad.py", "import random\n\nrng = random.Random()\n")
        assert main(["src", "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        (result,) = payload["runs"][0]["results"]
        assert result["ruleId"] == "DET001"
        write(tree, "src/repro/bad.py", "VALUE = 1\n")
        assert main(["src", "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# --changed-only
# ---------------------------------------------------------------------------

VIOLATION = "import random\n\nrng = random.Random()\n"


def git(tree, *args):
    return subprocess.run(
        ["git", "-c", "user.email=t@example.com", "-c", "user.name=t", *args],
        cwd=tree,
        capture_output=True,
        text=True,
        check=True,
    )


class TestChangedOnly:
    def test_restricts_per_file_rules_to_the_diff(self, tree, capsys):
        write(tree, "src/repro/a.py", VIOLATION)
        write(tree, "src/repro/b.py", VIOLATION)
        git(tree, "init", "-q")
        git(tree, "add", ".")
        git(tree, "commit", "-q", "-m", "seed")
        write(tree, "src/repro/a.py", VIOLATION + "\n# touched\n")
        assert main(["src", "--format", "json", "--changed-only"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {finding["path"] for finding in payload["findings"]} == {
            "src/repro/a.py"
        }

    def test_untracked_files_are_included(self, tree, capsys):
        write(tree, "src/repro/a.py", "VALUE = 1\n")
        git(tree, "init", "-q")
        git(tree, "add", ".")
        git(tree, "commit", "-q", "-m", "seed")
        write(tree, "src/repro/fresh.py", VIOLATION)
        assert main(["src", "--format", "json", "--changed-only"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {finding["path"] for finding in payload["findings"]} == {
            "src/repro/fresh.py"
        }

    def test_project_rules_still_run_whole_program(self, tree, capsys):
        """The graph rules ignore the restriction: they need every module."""
        write(tree, "src/repro/a.py", "def _helper():\n    return 1\n")
        write(
            tree,
            "src/repro/svc.py",
            "import time\n"
            "\n"
            "from repro.a import _helper\n"
            "\n"
            "\n"
            "async def _handler():\n"
            "    time.sleep(0.2)\n"
            "    return _helper()\n",
        )
        git(tree, "init", "-q")
        git(tree, "add", ".")
        git(tree, "commit", "-q", "-m", "seed")
        write(tree, "src/repro/a.py", "def _helper():\n    return 2\n")
        assert main(["src", "--format", "json", "--changed-only"]) == 1
        payload = json.loads(capsys.readouterr().out)
        rules = {finding["rule"] for finding in payload["findings"]}
        assert "ASY001" in rules  # found in svc.py, which is NOT in the diff

    def test_without_a_git_checkout_exits_two(self, tree, capsys):
        write(tree, "src/repro/a.py", "VALUE = 1\n")
        assert main(["src", "--changed-only"]) == 2
        assert "--changed-only needs a git checkout" in capsys.readouterr().err
