"""Baseline and suppression-index unit tests for reprolint."""

import json

import pytest

from repro.devtools import Baseline, Finding, Severity
from repro.devtools.engine import LintEngine
from repro.devtools.suppress import SuppressionIndex


def make_finding(rule="DET001", path="src/repro/m.py", line=5, text="rng = X()"):
    return Finding(
        rule=rule,
        path=path,
        line=line,
        col=0,
        message="msg",
        severity=Severity.ERROR,
        line_text=text,
    )


class TestBaselineMatching:
    def test_covered_finding_is_filtered(self):
        finding = make_finding()
        baseline = Baseline.from_findings([finding])
        assert baseline.filter_new([finding]) == []

    def test_line_number_drift_still_matches(self):
        baseline = Baseline.from_findings([make_finding(line=5)])
        moved = make_finding(line=50)
        assert baseline.filter_new([moved]) == []

    def test_changed_line_text_invalidates(self):
        baseline = Baseline.from_findings([make_finding(text="old text")])
        edited = make_finding(text="new text")
        assert baseline.filter_new([edited]) == [edited]

    def test_allowance_counts(self):
        baseline = Baseline.from_findings([make_finding(), make_finding()])
        three = [make_finding(), make_finding(), make_finding()]
        assert len(baseline.filter_new(three)) == 1

    def test_stale_entries_reported(self):
        baseline = Baseline.from_findings([make_finding(), make_finding(rule="NUM001")])
        stale = baseline.stale_entries([make_finding()])
        assert stale == [("NUM001", "src/repro/m.py", "rng = X()")]
        assert baseline.stale_entries([make_finding(), make_finding(rule="NUM001")]) == []


class TestBaselinePersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        original = Baseline.from_findings([make_finding()], justification="because")
        original.write(path)
        loaded = Baseline.load(path)
        assert loaded.filter_new([make_finding()]) == []
        assert json.loads(path.read_text())["entries"][0]["justification"] == "because"

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0
        finding = make_finding()
        assert baseline.filter_new([finding]) == [finding]

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            Baseline.load(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="v1"):
            Baseline.load(path)

    def test_empty_justification_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "DET003",
                            "path": "src/repro/m.py",
                            "line_text": "x",
                            "count": 1,
                            "justification": "",
                        }
                    ],
                }
            )
        )
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(path)


class TestBaselineRefreshed:
    def test_exact_match_preserves_justification(self):
        baseline = Baseline.from_findings([make_finding()], justification="because")
        refreshed, unresolved = baseline.refreshed([make_finding()])
        assert unresolved == []
        assert refreshed.to_payload()["entries"][0]["justification"] == "because"

    def test_drifted_line_text_migrates_unique_justification(self):
        baseline = Baseline.from_findings(
            [make_finding(text="old text")], justification="because"
        )
        refreshed, unresolved = baseline.refreshed([make_finding(text="new text")])
        assert unresolved == []
        entry = refreshed.to_payload()["entries"][0]
        assert entry["line_text"] == "new text"
        assert entry["justification"] == "because"

    def test_brand_new_finding_is_unresolved(self):
        baseline = Baseline.from_findings([make_finding()], justification="because")
        fresh = make_finding(rule="NUM001", text="y = g()")
        refreshed, unresolved = baseline.refreshed([make_finding(), fresh])
        assert unresolved == [fresh.key()]
        # the exact match still carries its justification over
        entries = {
            entry["rule"]: entry["justification"]
            for entry in refreshed.to_payload()["entries"]
        }
        assert entries["DET001"] == "because"

    def test_ambiguous_drift_is_unresolved(self):
        baseline = Baseline.from_findings(
            [make_finding(text="old one"), make_finding(text="old two")],
            justification="because",
        )
        drifted = make_finding(text="new text")
        _, unresolved = baseline.refreshed([drifted])
        assert unresolved == [drifted.key()]

    def test_fixed_findings_are_dropped(self):
        baseline = Baseline.from_findings(
            [make_finding(), make_finding(rule="NUM001")], justification="because"
        )
        refreshed, unresolved = baseline.refreshed([make_finding()])
        assert unresolved == []
        assert len(refreshed) == 1

    def test_count_shrink_updates_allowance(self):
        baseline = Baseline.from_findings(
            [make_finding()] * 3, justification="because"
        )
        refreshed, unresolved = baseline.refreshed([make_finding()])
        assert unresolved == []
        assert refreshed.to_payload()["entries"][0]["count"] == 1


class TestSuppressionIndex:
    def test_trailing_comment(self):
        index = SuppressionIndex("x = 1\ny = f()  # reprolint: disable=DET001\n")
        assert index.is_suppressed("DET001", 2)
        assert not index.is_suppressed("DET001", 1)
        assert not index.is_suppressed("DET002", 2)

    def test_multiple_rules(self):
        index = SuppressionIndex("y = f()  # reprolint: disable=DET001,NUM001\n")
        assert index.is_suppressed("DET001", 1)
        assert index.is_suppressed("NUM001", 1)

    def test_bare_disable_silences_all(self):
        index = SuppressionIndex("y = f()  # reprolint: disable\n")
        assert index.is_suppressed("ANYTHING", 1)

    def test_comment_line_covers_next_line(self):
        index = SuppressionIndex("# reprolint: disable=DET001\ny = f()\n")
        assert index.is_suppressed("DET001", 2)

    def test_skip_file_only_near_top(self):
        near_top = "# reprolint: skip-file\n" + "x = 1\n" * 20
        buried = "x = 1\n" * 20 + "# reprolint: skip-file\n"
        assert SuppressionIndex(near_top).skip_file
        assert not SuppressionIndex(buried).skip_file

    def test_unknown_rule_name_is_inert_for_real_rules(self):
        index = SuppressionIndex("y = f()  # reprolint: disable=NOPE999\n")
        assert index.is_suppressed("NOPE999", 1)
        assert not index.is_suppressed("DET001", 1)


class TestSuppressionThroughEngine:
    """Suppressions as the lint engine and the baseline actually apply them."""

    VIOLATING = "value = random.random() + time.time()"

    def lint(self, line):
        source = f"import random\nimport time\n\n\ndef f():\n    {line}\n"
        return LintEngine().lint_source(source, "src/repro/m.py")

    def test_one_line_raises_two_rules_unsuppressed(self):
        assert {f.rule for f in self.lint(self.VIOLATING)} == {"DET001", "DET002"}

    def test_multi_rule_disable_silences_both(self):
        line = f"{self.VIOLATING}  # reprolint: disable=DET001,DET002"
        assert self.lint(line) == []

    def test_partial_disable_leaves_the_other_rule(self):
        line = f"{self.VIOLATING}  # reprolint: disable=DET001"
        assert {f.rule for f in self.lint(line)} == {"DET002"}

    def test_unknown_rule_suppresses_nothing(self):
        line = f"{self.VIOLATING}  # reprolint: disable=NOPE999"
        assert {f.rule for f in self.lint(line)} == {"DET001", "DET002"}

    def test_baseline_misses_suppressed_then_edited_line(self):
        """A baselined line whose text drifts resurfaces as a new finding."""
        original = self.lint(self.VIOLATING)
        baseline = Baseline.from_findings(original, justification="legacy")
        edited = self.lint("value = random.random() + time.time() + 1")
        assert baseline.filter_new(edited) == edited
        # and --update-baseline would migrate rather than silently rewrite
        _, unresolved = baseline.refreshed(edited)
        assert unresolved == []
