"""CLI behaviour tests for ``python -m repro.devtools.lint``."""

import json

import pytest

from repro.devtools.lint import main

CLEAN = "VALUE = 1\n"

VIOLATION = (
    "import random\n"
    "\n"
    "rng = random.Random()\n"
)

SUPPRESSED = (
    "import random\n"
    "\n"
    "rng = random.Random()  # reprolint: disable=DET001\n"
)


@pytest.fixture()
def tree(tmp_path, monkeypatch):
    """A scratch tree the CLI lints, with cwd pinned inside it."""
    monkeypatch.chdir(tmp_path)
    (tmp_path / "src" / "repro").mkdir(parents=True)
    return tmp_path


def write(tree, relative, content):
    path = tree / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        write(tree, "src/repro/clean.py", CLEAN)
        assert main(["src"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_violation_exits_one(self, tree, capsys):
        write(tree, "src/repro/bad.py", VIOLATION)
        assert main(["src"]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "src/repro/bad.py:3" in out

    def test_suppressed_violation_exits_zero(self, tree):
        write(tree, "src/repro/bad.py", SUPPRESSED)
        assert main(["src"]) == 0

    def test_malformed_baseline_exits_two(self, tree, capsys):
        write(tree, "src/repro/clean.py", CLEAN)
        write(tree, "reprolint-baseline.json", "{broken")
        assert main(["src"]) == 2
        assert "not valid JSON" in capsys.readouterr().err


class TestBaselineWorkflow:
    def test_write_baseline_then_clean(self, tree, capsys):
        write(tree, "src/repro/bad.py", VIOLATION)
        assert main(["src", "--write-baseline"]) == 0
        assert "1 finding(s)" in capsys.readouterr().out
        # grandfathered now
        assert main(["src"]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # but --no-baseline still reports it
        assert main(["src", "--no-baseline"]) == 1

    def test_new_finding_alongside_baseline(self, tree):
        write(tree, "src/repro/bad.py", VIOLATION)
        main(["src", "--write-baseline"])
        write(tree, "src/repro/worse.py", "import time\nstamp = time.time()\n")
        assert main(["src"]) == 1

    def test_stale_entry_reported_but_passes(self, tree, capsys):
        write(tree, "src/repro/bad.py", VIOLATION)
        main(["src", "--write-baseline"])
        write(tree, "src/repro/bad.py", CLEAN)
        assert main(["src"]) == 0
        assert "stale" in capsys.readouterr().out


def seed_baseline(tree, justification="ambient RNG predates reprolint"):
    """A baseline grandfathering VIOLATION, with a human justification."""
    write(tree, "src/repro/bad.py", VIOLATION)
    main(["src", "--write-baseline"])
    payload = json.loads((tree / "reprolint-baseline.json").read_text())
    for entry in payload["entries"]:
        entry["justification"] = justification
    write(tree, "reprolint-baseline.json", json.dumps(payload))
    return payload


class TestUpdateBaseline:
    def test_prunes_fixed_entry_and_keeps_justifications(self, tree, capsys):
        write(tree, "src/repro/worse.py", "import time\nstamp = time.time()\n")
        seed_baseline(tree)  # grandfathers both files, with justifications
        write(tree, "src/repro/worse.py", CLEAN)  # fix one of them
        assert main(["src", "--update-baseline"]) == 0
        assert "justifications preserved" in capsys.readouterr().out
        payload = json.loads((tree / "reprolint-baseline.json").read_text())
        assert len(payload["entries"]) == 1
        assert payload["entries"][0]["justification"] == (
            "ambient RNG predates reprolint"
        )

    def test_migrates_justification_across_line_drift(self, tree, capsys):
        seed_baseline(tree)
        write(
            tree,
            "src/repro/bad.py",
            "import random\n\nrng = random.Random()  # tweaked\n",
        )
        assert main(["src"]) == 1  # line text drifted: finding resurfaces
        capsys.readouterr()
        assert main(["src", "--update-baseline"]) == 0
        payload = json.loads((tree / "reprolint-baseline.json").read_text())
        (entry,) = payload["entries"]
        assert entry["line_text"] == "rng = random.Random()  # tweaked"
        assert entry["justification"] == "ambient RNG predates reprolint"
        assert main(["src"]) == 0  # green again, rationale intact

    def test_refuses_when_entry_would_lose_justification(self, tree, capsys):
        seed_baseline(tree)
        before = (tree / "reprolint-baseline.json").read_text()
        write(tree, "src/repro/worse.py", "import time\nstamp = time.time()\n")
        assert main(["src", "--update-baseline"]) == 2
        err = capsys.readouterr().err
        assert "would lose their justification" in err
        assert "DET002" in err
        # refused: the committed baseline is untouched
        assert (tree / "reprolint-baseline.json").read_text() == before


class TestOutputFormats:
    def test_json_format(self, tree, capsys):
        write(tree, "src/repro/bad.py", VIOLATION)
        assert main(["src", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["baselined"] == 0
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET001"
        assert finding["path"] == "src/repro/bad.py"
        assert finding["line"] == 3
        assert finding["severity"] == "error"

    def test_list_rules(self, tree, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "DET002", "DET003", "TEL001", "TEL002",
                     "PAR001", "PAR002", "NUM001",
                     "XPAR001", "XTEL001", "XCFG001", "XDEAD001",
                     "ASY001", "ASY002", "ASY003", "ASY004", "XTNT001"):
            assert code in out

    def test_default_paths_cover_all_four_trees(self, tree):
        write(tree, "src/repro/clean.py", CLEAN)
        write(tree, "tests/test_ok.py", CLEAN)
        write(tree, "benchmarks/bench_ok.py", CLEAN)
        write(tree, "examples/example_ok.py", CLEAN)
        assert main([]) == 0
        write(tree, "benchmarks/bench_bad.py", VIOLATION)
        assert main([]) == 1

    def test_no_project_skips_cross_module_rules(self, tree, capsys):
        write(
            tree,
            "src/repro/extra.py",
            "def unused_helper():\n    return 1\n",
        )
        assert main(["src"]) == 1
        assert "XDEAD001" in capsys.readouterr().out
        assert main(["src", "--no-project"]) == 0
