"""CLI behaviour tests for ``python -m repro.devtools.lint``."""

import json

import pytest

from repro.devtools.lint import main

CLEAN = "VALUE = 1\n"

VIOLATION = (
    "import random\n"
    "\n"
    "rng = random.Random()\n"
)

SUPPRESSED = (
    "import random\n"
    "\n"
    "rng = random.Random()  # reprolint: disable=DET001\n"
)


@pytest.fixture()
def tree(tmp_path, monkeypatch):
    """A scratch tree the CLI lints, with cwd pinned inside it."""
    monkeypatch.chdir(tmp_path)
    (tmp_path / "src" / "repro").mkdir(parents=True)
    return tmp_path


def write(tree, relative, content):
    path = tree / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        write(tree, "src/repro/clean.py", CLEAN)
        assert main(["src"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_violation_exits_one(self, tree, capsys):
        write(tree, "src/repro/bad.py", VIOLATION)
        assert main(["src"]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "src/repro/bad.py:3" in out

    def test_suppressed_violation_exits_zero(self, tree):
        write(tree, "src/repro/bad.py", SUPPRESSED)
        assert main(["src"]) == 0

    def test_malformed_baseline_exits_two(self, tree, capsys):
        write(tree, "src/repro/clean.py", CLEAN)
        write(tree, "reprolint-baseline.json", "{broken")
        assert main(["src"]) == 2
        assert "not valid JSON" in capsys.readouterr().err


class TestBaselineWorkflow:
    def test_write_baseline_then_clean(self, tree, capsys):
        write(tree, "src/repro/bad.py", VIOLATION)
        assert main(["src", "--write-baseline"]) == 0
        assert "1 finding(s)" in capsys.readouterr().out
        # grandfathered now
        assert main(["src"]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # but --no-baseline still reports it
        assert main(["src", "--no-baseline"]) == 1

    def test_new_finding_alongside_baseline(self, tree):
        write(tree, "src/repro/bad.py", VIOLATION)
        main(["src", "--write-baseline"])
        write(tree, "src/repro/worse.py", "import time\nstamp = time.time()\n")
        assert main(["src"]) == 1

    def test_stale_entry_reported_but_passes(self, tree, capsys):
        write(tree, "src/repro/bad.py", VIOLATION)
        main(["src", "--write-baseline"])
        write(tree, "src/repro/bad.py", CLEAN)
        assert main(["src"]) == 0
        assert "stale" in capsys.readouterr().out


class TestOutputFormats:
    def test_json_format(self, tree, capsys):
        write(tree, "src/repro/bad.py", VIOLATION)
        assert main(["src", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["baselined"] == 0
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET001"
        assert finding["path"] == "src/repro/bad.py"
        assert finding["line"] == 3
        assert finding["severity"] == "error"

    def test_list_rules(self, tree, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "DET002", "DET003", "TEL001", "TEL002",
                     "PAR001", "PAR002", "NUM001"):
            assert code in out

    def test_default_paths_lint_src_and_tests(self, tree):
        write(tree, "src/repro/clean.py", CLEAN)
        write(tree, "tests/test_ok.py", CLEAN)
        assert main([]) == 0
