"""Planted-violation and clean fixtures for the cross-module X rules.

Each rule gets at least one scratch tree where the violation fires and a
matching clean tree where it does not, exercised through the real
``LintEngine`` so suppression and finding plumbing are covered too.
"""

import textwrap

from repro.devtools.engine import LintEngine


def write(root, relative, content):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(content))
    return path


def lint(tmp_path, monkeypatch, *paths):
    monkeypatch.chdir(tmp_path)
    return LintEngine().lint_paths(list(paths) or ["src"])


def only(findings, rule):
    return [finding for finding in findings if finding.rule == rule]


class TestProcessBoundaryMutation:
    def test_fires_on_container_mutation_reachable_from_pool_map(
        self, tmp_path, monkeypatch
    ):
        write(
            tmp_path,
            "src/repro/work.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            _CACHE = {}

            def _helper(n):
                _CACHE[n] = n * n
                return _CACHE[n]

            def task(n):
                return _helper(n)

            def run(values):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(task, values))
            """,
        )
        findings = only(lint(tmp_path, monkeypatch), "XPAR001")
        assert len(findings) == 1
        assert findings[0].path == "src/repro/work.py"
        assert "'repro.work._helper'" in findings[0].message
        assert "'_CACHE'" in findings[0].message
        assert "repro.work.task" in findings[0].message

    def test_fires_on_transitive_global_rebind(self, tmp_path, monkeypatch):
        write(
            tmp_path,
            "src/repro/work.py",
            """
            _MODE = "fast"

            def _set_mode(mode):
                global _MODE
                _MODE = mode

            def task(n):
                _set_mode("slow")
                return n

            def run(pool, values):
                return [pool.submit(task, value) for value in values]
            """,
        )
        findings = only(lint(tmp_path, monkeypatch), "XPAR001")
        assert len(findings) == 1
        assert "'repro.work._set_mode'" in findings[0].message
        assert "'_MODE'" in findings[0].message

    def test_clean_when_state_stays_worker_local(self, tmp_path, monkeypatch):
        write(
            tmp_path,
            "src/repro/work.py",
            """
            def task(n):
                cache = {}
                cache[n] = n * n
                return cache[n]

            def run(pool, values):
                return [pool.submit(task, value) for value in values]
            """,
        )
        assert only(lint(tmp_path, monkeypatch), "XPAR001") == []

    def test_pool_initializer_pattern_is_blessed(self, tmp_path, monkeypatch):
        write(
            tmp_path,
            "src/repro/work.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            _BACKEND = None

            def _pool_init(backend):
                global _BACKEND
                _BACKEND = backend

            def task(n):
                return (_BACKEND, n)

            def run(values):
                with ProcessPoolExecutor(initializer=_pool_init) as pool:
                    return list(pool.map(task, values))
            """,
        )
        assert only(lint(tmp_path, monkeypatch), "XPAR001") == []

    def test_inline_suppression_covers_project_findings(
        self, tmp_path, monkeypatch
    ):
        write(
            tmp_path,
            "src/repro/work.py",
            """
            _MODE = "fast"

            def _set_mode(mode):  # reprolint: disable=XPAR001
                global _MODE
                _MODE = mode

            def task(n):
                _set_mode("slow")
                return n

            def run(pool, values):
                return [pool.submit(task, value) for value in values]
            """,
        )
        assert only(lint(tmp_path, monkeypatch), "XPAR001") == []


TELEMETRY_DOC = """\
# Telemetry

<!-- metric-catalog:begin -->
| Name | Kind | Emitted by |
| --- | --- | --- |
| `stage.count` | counter | met.py |
| `scans.era.<source-name>.records` | counter | met.py |
<!-- metric-catalog:end -->
"""


class TestTelemetryContractDrift:
    def test_fires_both_directions(self, tmp_path, monkeypatch):
        write(tmp_path, "docs/TELEMETRY.md", TELEMETRY_DOC)
        write(
            tmp_path,
            "src/repro/met.py",
            """
            def record(telemetry, name):
                telemetry.counter("stage.count", 1)
                telemetry.counter("rogue.metric", 1)
            """,
        )
        findings = only(lint(tmp_path, monkeypatch), "XTEL001")
        assert len(findings) == 2
        undocumented = [f for f in findings if "rogue.metric" in f.message]
        assert len(undocumented) == 1
        assert undocumented[0].path == "src/repro/met.py"
        unemitted = [f for f in findings if "emitted nowhere" in f.message]
        assert len(unemitted) == 1
        assert unemitted[0].path.endswith("docs/TELEMETRY.md")
        assert "scans.era.<source-name>.records" in unemitted[0].message

    def test_clean_with_wildcard_fstring_match(self, tmp_path, monkeypatch):
        write(tmp_path, "docs/TELEMETRY.md", TELEMETRY_DOC)
        write(
            tmp_path,
            "src/repro/met.py",
            """
            def record(telemetry, name):
                telemetry.counter("stage.count", 1)
                telemetry.counter(f"scans.era.{name}.records", 1)
            """,
        )
        assert only(lint(tmp_path, monkeypatch), "XTEL001") == []

    def test_silent_without_contract_doc(self, tmp_path, monkeypatch):
        write(
            tmp_path,
            "src/repro/met.py",
            """
            def record(telemetry):
                telemetry.counter("rogue.metric", 1)
            """,
        )
        assert only(lint(tmp_path, monkeypatch), "XTEL001") == []


STUDYCONFIG = """
class StudyConfig:
    seed: int = 2016
    batchgcd_k: int = 16
"""


class TestStudyConfigCliDrift:
    def test_fires_on_stale_config_kwarg(self, tmp_path, monkeypatch):
        write(tmp_path, "src/repro/studyconfig.py", STUDYCONFIG)
        write(
            tmp_path,
            "src/repro/cli.py",
            """
            import argparse

            def main():
                parser = argparse.ArgumentParser()
                parser.add_argument("--seed", type=int)
                parser.add_argument("--batchgcd-k", type=int)
                args = parser.parse_args()
                config = build()
                config = config.with_(seed=args.seed)
                config = config.with_(batchgcd_k=args.batchgcd_k)
                return config.with_(world_scale=3)
            """,
        )
        findings = only(lint(tmp_path, monkeypatch), "XCFG001")
        assert len(findings) == 1
        assert findings[0].path == "src/repro/cli.py"
        assert "'world_scale' is not a StudyConfig field" in findings[0].message

    def test_fires_on_parsed_but_unapplied_flag(self, tmp_path, monkeypatch):
        write(tmp_path, "src/repro/studyconfig.py", STUDYCONFIG)
        write(
            tmp_path,
            "src/repro/cli.py",
            """
            import argparse

            def main():
                parser = argparse.ArgumentParser()
                parser.add_argument("--seed", type=int)
                parser.add_argument("--batchgcd-k", type=int)
                args = parser.parse_args()
                config = build()
                return config.with_(batchgcd_k=args.batchgcd_k)
            """,
        )
        findings = only(lint(tmp_path, monkeypatch), "XCFG001")
        assert len(findings) == 1
        assert "'--seed'" in findings[0].message
        assert "silently dropped" in findings[0].message

    def test_fires_on_unexposed_batchgcd_knob(self, tmp_path, monkeypatch):
        write(tmp_path, "src/repro/studyconfig.py", STUDYCONFIG)
        write(
            tmp_path,
            "src/repro/cli.py",
            """
            import argparse

            def main():
                parser = argparse.ArgumentParser()
                parser.add_argument("--seed", type=int)
                args = parser.parse_args()
                config = build()
                return config.with_(seed=args.seed)
            """,
        )
        findings = only(lint(tmp_path, monkeypatch), "XCFG001")
        assert len(findings) == 1
        assert findings[0].path == "src/repro/studyconfig.py"
        assert "StudyConfig.batchgcd_k" in findings[0].message

    def test_clean_when_fields_and_flags_agree(self, tmp_path, monkeypatch):
        write(tmp_path, "src/repro/studyconfig.py", STUDYCONFIG)
        write(
            tmp_path,
            "src/repro/cli.py",
            """
            import argparse

            def main():
                parser = argparse.ArgumentParser()
                parser.add_argument("--seed", type=int)
                parser.add_argument("--batchgcd-k", type=int)
                args = parser.parse_args()
                config = build()
                config = config.with_(seed=args.seed)
                return config.with_(batchgcd_k=args.batchgcd_k)
            """,
        )
        assert only(lint(tmp_path, monkeypatch), "XCFG001") == []

    def test_alias_spelling_counts_as_exposure(self, tmp_path, monkeypatch):
        write(
            tmp_path,
            "src/repro/studyconfig.py",
            """
            class StudyConfig:
                batchgcd_backend: str = "python"
            """,
        )
        write(
            tmp_path,
            "src/repro/cli.py",
            """
            import argparse

            def main():
                parser = argparse.ArgumentParser()
                parser.add_argument("--numt-backend", dest="numt_backend")
                args = parser.parse_args()
                config = build()
                return config.with_(batchgcd_backend=args.numt_backend)
            """,
        )
        assert only(lint(tmp_path, monkeypatch), "XCFG001") == []


class TestDeadPublicSymbol:
    def test_fires_on_unreferenced_public_symbol(self, tmp_path, monkeypatch):
        write(
            tmp_path,
            "src/repro/extra.py",
            """
            def unused_helper():
                return 1
            """,
        )
        findings = only(lint(tmp_path, monkeypatch), "XDEAD001")
        assert len(findings) == 1
        assert "'repro.extra.unused_helper'" in findings[0].message

    def test_import_and_all_do_not_count_as_references(
        self, tmp_path, monkeypatch
    ):
        write(
            tmp_path,
            "src/repro/extra.py",
            """
            def exported_helper():
                return 1
            """,
        )
        write(
            tmp_path,
            "src/repro/__init__.py",
            """
            from repro.extra import exported_helper

            __all__ = ["exported_helper"]
            """,
        )
        findings = only(lint(tmp_path, monkeypatch), "XDEAD001")
        assert len(findings) == 1
        assert "exported_helper" in findings[0].message

    def test_clean_when_referenced_from_tests(self, tmp_path, monkeypatch):
        write(
            tmp_path,
            "src/repro/extra.py",
            """
            def used_helper():
                return 1
            """,
        )
        write(
            tmp_path,
            "tests/test_extra.py",
            """
            from repro.extra import used_helper

            def test_used_helper():
                assert used_helper() == 1
            """,
        )
        assert only(lint(tmp_path, monkeypatch), "XDEAD001") == []

    def test_private_main_and_registered_symbols_exempt(
        self, tmp_path, monkeypatch
    ):
        write(
            tmp_path,
            "src/repro/extra.py",
            """
            from repro.plugins import registry

            def main():
                return 0

            def _internal():
                return 1

            @registry.register
            class Plugin:
                pass
            """,
        )
        write(tmp_path, "src/repro/plugins.py", "registry = None\n")
        assert only(lint(tmp_path, monkeypatch), "XDEAD001") == []


SERVER_MODULE = """
_ROUTES = []

def route(method, pattern):
    def wrap(fn):
        _ROUTES.append((method, pattern, fn))
        return fn
    return wrap

class Server:
    @route("GET", "/healthz")
    async def health(self, request):
        return None

    @route("POST", "/v1/jobs")
    async def submit(self, request):
        self.telemetry.counter("service.http.requests", 1)
        return None
"""

SERVICE_DOC = """
# Service

<!-- endpoint-catalog:begin -->
| Method | Path | Purpose |
|---|---|---|
| `GET` | `/healthz` | liveness |
| `POST` | `/v1/jobs` | submit |
<!-- endpoint-catalog:end -->

Metrics: `service.http.requests` counts dispatched requests.
"""


class TestServiceContractDrift:
    def test_fires_both_directions_on_catalog_drift(self, tmp_path, monkeypatch):
        write(
            tmp_path,
            "docs/SERVICE.md",
            SERVICE_DOC.replace(
                "| `POST` | `/v1/jobs` | submit |",
                "| `POST` | `/v1/jobs/<job_id>/retry` | ghost row |",
            ),
        )
        write(tmp_path, "src/repro/server.py", SERVER_MODULE)
        findings = only(lint(tmp_path, monkeypatch), "XSVC001")
        assert len(findings) == 2
        undocumented = [f for f in findings if "POST /v1/jobs'" in f.message]
        assert len(undocumented) == 1
        assert undocumented[0].path == "src/repro/server.py"
        ghost = [f for f in findings if "registered nowhere" in f.message]
        assert len(ghost) == 1
        assert ghost[0].path.endswith("docs/SERVICE.md")
        assert "/v1/jobs/<job_id>/retry" in ghost[0].message

    def test_fires_when_doc_missing_entirely(self, tmp_path, monkeypatch):
        write(tmp_path, "src/repro/server.py", SERVER_MODULE)
        findings = only(lint(tmp_path, monkeypatch), "XSVC001")
        assert len(findings) == 1
        assert "does not exist" in findings[0].message
        assert findings[0].path == "src/repro/server.py"

    def test_fires_when_doc_has_no_catalog_markers(self, tmp_path, monkeypatch):
        write(tmp_path, "docs/SERVICE.md", "# Service\n\nprose only\n")
        write(tmp_path, "src/repro/server.py", SERVER_MODULE)
        findings = only(lint(tmp_path, monkeypatch), "XSVC001")
        assert len(findings) == 1
        assert "no machine-readable endpoint catalog" in findings[0].message

    def test_fires_on_unmentioned_service_metric(self, tmp_path, monkeypatch):
        write(
            tmp_path,
            "docs/SERVICE.md",
            SERVICE_DOC.replace("`service.http.requests`", "nothing here"),
        )
        write(tmp_path, "src/repro/server.py", SERVER_MODULE)
        findings = only(lint(tmp_path, monkeypatch), "XSVC001")
        assert len(findings) == 1
        assert "service.http.requests" in findings[0].message
        assert "service metrics table" in findings[0].message

    def test_clean_when_catalog_matches(self, tmp_path, monkeypatch):
        write(tmp_path, "docs/SERVICE.md", SERVICE_DOC)
        write(tmp_path, "src/repro/server.py", SERVER_MODULE)
        assert only(lint(tmp_path, monkeypatch), "XSVC001") == []

    def test_silent_without_service_layer(self, tmp_path, monkeypatch):
        write(
            tmp_path,
            "src/repro/plain.py",
            """
            def run():
                return 1
            """,
        )
        assert only(lint(tmp_path, monkeypatch), "XSVC001") == []


class TestRealRepoSurface:
    def test_real_tree_has_no_new_cross_module_findings(self):
        findings = LintEngine().lint_paths(
            ["src", "tests", "benchmarks", "examples"]
        )
        cross = [f for f in findings if f.rule.startswith("X")]
        assert cross == []
