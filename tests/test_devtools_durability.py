"""Fixture tests for the crash-consistency rules (DUR001-DUR005).

Each rule gets a positive plant (the violation fires), a negative plant
(the disciplined shape stays clean), and a suppressed plant (an inline
``# reprolint: disable=DURxxx`` silences the finding).  Plants run
through the real in-process engine — per-file pass, whole-program graph,
effect index, suppressions — exactly the pipeline the CI gate uses.
"""

import textwrap

from repro.devtools.engine import LintEngine


def lint_plant(tmp_path, source):
    victim = tmp_path / "src" / "repro" / "planted.py"
    victim.parent.mkdir(parents=True, exist_ok=True)
    (victim.parent / "__init__.py").write_text("")
    victim.write_text(textwrap.dedent(source))
    findings = LintEngine().lint_paths([tmp_path / "src"])
    return {finding.rule for finding in findings}, findings


#: Write + flush + fsync + rename + directory fsync: the full discipline.
SAFE_PUBLISH = """
import os


def publish(directory, payload):
    tmp = directory / "data.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, directory / "data.json")
    fd = os.open(directory, os.O_RDONLY | os.O_DIRECTORY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
"""


class TestDur001UnsyncedRenameSource:
    POSITIVE = """
    import os


    def publish(directory, payload):
        tmp = directory / "data.tmp"
        tmp.write_text(payload)
        os.replace(tmp, directory / "data.json")
    """

    def test_write_text_then_rename_fires(self, tmp_path):
        rules, findings = lint_plant(tmp_path, self.POSITIVE)
        assert "DUR001" in rules
        (finding,) = [f for f in findings if f.rule == "DUR001"]
        assert "write_text" in finding.message

    def test_unflushed_handle_then_rename_fires(self, tmp_path):
        rules, _ = lint_plant(
            tmp_path,
            """
            import os


            def publish(directory, payload):
                tmp = directory / "data.tmp"
                with open(tmp, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(tmp, directory / "data.json")
            """,
        )
        assert "DUR001" in rules

    def test_journal_write_without_fsync_fires(self, tmp_path):
        rules, findings = lint_plant(
            tmp_path,
            """
            class Queue:
                def __init__(self, journal_file):
                    self._journal_file = journal_file

                def append(self, line):
                    self._journal_file.write(line)
                    self._journal_file.flush()
            """,
        )
        assert "DUR001" in rules
        (finding,) = [f for f in findings if f.rule == "DUR001"]
        assert "journal" in finding.message

    def test_fsynced_rename_source_is_clean(self, tmp_path):
        rules, _ = lint_plant(tmp_path, SAFE_PUBLISH)
        assert "DUR001" not in rules

    def test_inline_disable_suppresses(self, tmp_path):
        rules, _ = lint_plant(
            tmp_path,
            """
            import os


            def publish(directory, payload):
                tmp = directory / "data.tmp"
                tmp.write_text(payload)
                os.replace(tmp, directory / "data.json")  # reprolint: disable=DUR001
            """,
        )
        assert "DUR001" not in rules


class TestDur002CommitPointInPlace:
    POSITIVE = """
    def commit(directory, payload):
        (directory / "manifest.json").write_text(payload)
    """

    def test_in_place_manifest_write_fires(self, tmp_path):
        rules, findings = lint_plant(tmp_path, self.POSITIVE)
        assert "DUR002" in rules
        (finding,) = [f for f in findings if f.rule == "DUR002"]
        assert "manifest" in finding.message

    def test_commit_point_path_handed_to_in_place_writer_fires(self, tmp_path):
        rules, _ = lint_plant(
            tmp_path,
            """
            def _dump(path, payload):
                path.write_text(payload)


            def commit(directory, payload):
                _dump(directory / "manifest.json", payload)
            """,
        )
        assert "DUR002" in rules

    def test_temp_plus_rename_is_clean(self, tmp_path):
        rules, _ = lint_plant(
            tmp_path,
            SAFE_PUBLISH.replace('"data.json"', '"manifest.json"'),
        )
        assert "DUR002" not in rules

    def test_inline_disable_suppresses(self, tmp_path):
        rules, _ = lint_plant(
            tmp_path,
            """
            def commit(directory, payload):
                # reprolint: disable=DUR002
                (directory / "manifest.json").write_text(payload)
            """,
        )
        assert "DUR002" not in rules


class TestDur003JournalOrdering:
    POSITIVE = """
    from repro.faults.journal import MutationJournal


    class Store:
        def __init__(self, directory):
            self._journal = MutationJournal(directory / "journal.jsonl")
            self._path = directory / "state.json"

        def mutate(self, record, fast):
            if fast:
                self._journal.append({"r": record})
            self._path.write_text(record)
    """

    def test_mutation_bypassing_the_append_fires(self, tmp_path):
        rules, findings = lint_plant(tmp_path, self.POSITIVE)
        assert "DUR003" in rules
        (finding,) = [f for f in findings if f.rule == "DUR003"]
        assert "append" in finding.message

    def test_journal_first_is_clean(self, tmp_path):
        rules, _ = lint_plant(
            tmp_path,
            """
            from repro.faults.journal import MutationJournal


            class Store:
                def __init__(self, directory):
                    self._journal = MutationJournal(directory / "journal.jsonl")
                    self._path = directory / "state.json"

                def mutate(self, record):
                    self._journal.append({"r": record})
                    self._path.write_text(record)
            """,
        )
        assert "DUR003" not in rules

    def test_optional_journal_guard_blesses_both_arms(self, tmp_path):
        """`if self._journal is not None:` is the memory-only escape hatch."""
        rules, _ = lint_plant(
            tmp_path,
            """
            class Store:
                def __init__(self, directory, journal):
                    self._journal = journal
                    self._path = directory / "state.json"

                def mutate(self, record):
                    if self._journal is not None:
                        self._journal.append({"r": record})
                    self._path.write_text(record)
            """,
        )
        assert "DUR003" not in rules

    def test_inline_disable_suppresses(self, tmp_path):
        rules, _ = lint_plant(
            tmp_path,
            self.POSITIVE.replace(
                "self._path.write_text(record)",
                "self._path.write_text(record)  # reprolint: disable=DUR003",
            ),
        )
        assert "DUR003" not in rules


class TestDur004RenameWithoutDirFsync:
    POSITIVE = """
    import os


    def publish(directory, payload):
        tmp = directory / "data.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, directory / "data.json")
    """

    def test_rename_with_no_dir_fsync_warns(self, tmp_path):
        rules, findings = lint_plant(tmp_path, self.POSITIVE)
        assert "DUR004" in rules
        # The file itself was fsynced, so the stricter DUR001 stays quiet.
        assert "DUR001" not in rules
        (finding,) = [f for f in findings if f.rule == "DUR004"]
        assert "power loss" in finding.message

    def test_directory_fsync_is_clean(self, tmp_path):
        rules, _ = lint_plant(tmp_path, SAFE_PUBLISH)
        assert "DUR004" not in rules

    def test_inline_disable_suppresses(self, tmp_path):
        rules, _ = lint_plant(
            tmp_path,
            self.POSITIVE.replace(
                'os.replace(tmp, directory / "data.json")',
                'os.replace(tmp, directory / "data.json")'
                "  # reprolint: disable=DUR004",
            ),
        )
        assert "DUR004" not in rules


class TestDur005TornTailReader:
    POSITIVE = """
    import json


    def load(path):
        records = []
        for line in path.read_text().splitlines():
            records.append(json.loads(line))
        return records
    """

    def test_unguarded_line_loop_fires(self, tmp_path):
        rules, findings = lint_plant(tmp_path, self.POSITIVE)
        assert "DUR005" in rules
        (finding,) = [f for f in findings if f.rule == "DUR005"]
        assert "torn" in finding.message

    def test_guarded_line_loop_is_clean(self, tmp_path):
        rules, _ = lint_plant(
            tmp_path,
            """
            import json


            def load(path):
                records = []
                for line in path.read_text().splitlines():
                    try:
                        records.append(json.loads(line))
                    except ValueError:
                        break
                return records
            """,
        )
        assert "DUR005" not in rules

    def test_inline_disable_suppresses(self, tmp_path):
        rules, _ = lint_plant(
            tmp_path,
            self.POSITIVE.replace(
                "records.append(json.loads(line))",
                "records.append(json.loads(line))  # reprolint: disable=DUR005",
            ),
        )
        assert "DUR005" not in rules
