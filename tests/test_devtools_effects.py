"""Unit tests for the filesystem-effect analysis (`repro.devtools.effects`).

One fixture per effect kind, each with a positive and a negative shape,
plus the interprocedural propagation fixpoint, the real-repo summaries
the DUR rules lean on, and the cached-vs-fresh determinism of the
schema-3 JSON export.
"""

import ast
import json
import os
import textwrap
from pathlib import Path

from repro.devtools import dataflow
from repro.devtools import graph as graphmod
from repro.devtools.effects import is_tempish, path_tokens

REPO_ROOT = Path(__file__).resolve().parent.parent


def write(root, relative, content):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(content))
    return path


def build(root, *relatives):
    return graphmod.build_graph([root / rel for rel in relatives], root=root)


def summarize(tmp_path, source, qualname="repro.fx.fn"):
    write(tmp_path, "src/repro/fx.py", source)
    graph = build(tmp_path, "src/repro/fx.py")
    summary = graph.effect_index().effects(qualname)
    assert summary is not None, qualname
    return summary


class TestPathTokens:
    def test_names_attributes_and_strings_contribute(self):
        expr = ast.parse('self.directory / "manifest.json"', mode="eval").body
        # Rules match on segment membership, never on order.
        assert set(path_tokens(expr).split("/")) == {
            "self",
            "directory",
            "manifest.json",
        }

    def test_none_is_empty(self):
        assert path_tokens(None) == ""

    def test_tempish(self):
        assert is_tempish("directory/state.json.tmp")
        assert is_tempish("self/_tempfile")
        assert not is_tempish("directory/manifest.json")


class TestOpenEffects:
    def test_builtin_open_for_write(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            def fn(path):
                handle = open(path, "w")
                handle.close()
            """,
        )
        (effect,) = summary.by_kind("open_write")
        assert effect.target == "handle"
        assert effect.path == "path"

    def test_open_for_append_and_mode_keyword(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            def fn(path):
                with open(path, mode="a") as handle:
                    handle.close()
            """,
        )
        assert summary.by_kind("open_append")
        assert not summary.by_kind("open_write")

    def test_open_for_read_is_not_an_effect(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            def fn(path):
                with open(path) as handle:
                    return handle.read()
            """,
        )
        assert not summary.by_kind("open_write", "open_append")

    def test_path_open_method(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            def fn(path):
                with path.open("w") as handle:
                    handle.close()
            """,
        )
        (effect,) = summary.by_kind("open_write")
        assert effect.path == "path"

    def test_temp_create_rides_on_tempish_paths(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            def fn(directory):
                tmp = directory / "state.json.tmp"
                with open(tmp, "w") as handle:
                    handle.close()
            """,
        )
        assert summary.by_kind("temp_create")

    def test_no_temp_create_on_final_paths(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            def fn(directory):
                with open(directory / "state.json", "w") as handle:
                    handle.close()
            """,
        )
        assert not summary.by_kind("temp_create")


class TestWriteFlushFsync:
    def test_handle_write_carries_the_opened_path(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            def fn(path, payload):
                with open(path, "w") as handle:
                    handle.write(payload)
            """,
        )
        (effect,) = summary.by_kind("write")
        assert effect.target == "handle"
        assert effect.path == "path"

    def test_write_text_is_write_file(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            def fn(path, payload):
                path.write_text(payload)
            """,
        )
        (effect,) = summary.by_kind("write_file")
        assert effect.path == "path"
        assert not summary.by_kind("write")

    def test_flush_and_fsync(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            import os


            def fn(path, payload):
                with open(path, "w") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
            """,
        )
        assert summary.by_kind("flush")
        (effect,) = summary.by_kind("fsync")
        assert "handle" in effect.target.split("/")
        assert not summary.by_kind("dir_fsync")

    def test_directory_descriptor_fsync_is_dir_fsync(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            import os


            def fn(path):
                fd = os.open(path, os.O_RDONLY | os.O_DIRECTORY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            """,
        )
        assert summary.by_kind("dir_fsync")
        assert not summary.by_kind("fsync")


class TestRenameEffects:
    def test_os_replace(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            import os


            def fn(directory):
                tmp = directory / "state.tmp"
                os.replace(tmp, directory / "state.json")
            """,
        )
        (effect,) = summary.by_kind("rename")
        assert effect.target == "tmp"
        assert "state.json" in effect.path.split("/")

    def test_path_replace_method(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            def fn(tmp, final):
                tmp.replace(final)
            """,
        )
        (effect,) = summary.by_kind("rename")
        assert (effect.target, effect.path) == ("tmp", "final")

    def test_str_replace_is_not_a_rename(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            def fn(text):
                return text.replace("a", "b")
            """,
        )
        assert not summary.by_kind("rename")


class TestJournalEffects:
    def test_journal_receiver_methods(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            class Store:
                def __init__(self, journal):
                    self._journal = journal

                def mutate(self, record):
                    seq = self._journal.append(record)
                    self._journal.commit(seq)
                    self._journal.clear()
            """,
            qualname="repro.fx.Store.mutate",
        )
        assert summary.by_kind("journal_append")
        assert summary.by_kind("journal_commit")
        assert summary.by_kind("journal_clear")

    def test_list_append_is_not_a_journal(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            def fn(records, record):
                records.append(record)
            """,
        )
        assert not summary.by_kind("journal_append")


class TestJsonlReads:
    def test_unguarded_line_loop(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            import json


            def fn(path):
                return [json.loads(line) for line in []] or [
                    json.loads(line) for line in path.read_text().splitlines()
                ]
            """,
        )
        # Comprehensions are not line loops; only the For shape counts.
        assert not summary.by_kind("jsonl_read", "jsonl_read_unguarded")
        summary = summarize(
            tmp_path,
            """
            import json


            def fn(path):
                records = []
                for line in path.read_text().splitlines():
                    records.append(json.loads(line))
                return records
            """,
        )
        assert summary.by_kind("jsonl_read_unguarded")
        assert not summary.by_kind("jsonl_read")

    def test_try_guard_inside_the_loop(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            import json


            def fn(path):
                records = []
                for line in path.read_text().splitlines():
                    try:
                        records.append(json.loads(line))
                    except ValueError:
                        break
                return records
            """,
        )
        assert summary.by_kind("jsonl_read")
        assert not summary.by_kind("jsonl_read_unguarded")

    def test_loads_in_the_handler_is_not_guarded(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            import json


            def fn(path):
                records = []
                for line in path.read_text().splitlines():
                    try:
                        records.append(json.loads(line))
                    except ValueError:
                        records.append(json.loads(line.strip()))
                return records
            """,
        )
        assert summary.by_kind("jsonl_read")
        assert summary.by_kind("jsonl_read_unguarded")


class TestTransitivePropagation:
    SOURCE = """
    import os


    def _sync(handle):
        handle.flush()
        os.fsync(handle.fileno())


    def fn(path, payload):
        with open(path, "w") as handle:
            handle.write(payload)
            _sync(handle)
    """

    def test_callee_kinds_reach_the_caller(self, tmp_path):
        write(tmp_path, "src/repro/fx.py", self.SOURCE)
        graph = build(tmp_path, "src/repro/fx.py")
        index = graph.effect_index()
        assert "fsync" not in index.own("repro.fx.fn")
        assert {"fsync", "flush"} <= index.transitive("repro.fx.fn")
        assert index.transitive("repro.fx._sync") == index.own("repro.fx._sync")

    def test_nested_defs_keep_their_own_effects(self, tmp_path):
        summary = summarize(
            tmp_path,
            """
            def fn(path):
                def _inner(payload):
                    path.write_text(payload)
                return _inner
            """,
        )
        assert not summary.own


class TestRealRepoSummaries:
    """The summaries the DUR rules rely on, over the live source tree."""

    def _index(self):
        graph = build(
            REPO_ROOT,
            "src/repro/faults/fsio.py",
            "src/repro/faults/journal.py",
        )
        return graph.effect_index()

    def test_atomic_write_text_is_the_full_discipline(self):
        index = self._index()
        transitive = index.transitive("repro.faults.fsio.atomic_write_text")
        assert {
            "open_write",
            "write",
            "flush",
            "fsync",
            "rename",
            "temp_create",
            "dir_fsync",
        } <= transitive

    def test_fsync_helpers(self):
        index = self._index()
        assert index.own("repro.faults.fsio.fsync_file") == {"flush", "fsync"}
        assert "dir_fsync" in index.own("repro.faults.fsio.fsync_dir")

    def test_journal_append_fsyncs_and_read_is_guarded(self):
        index = self._index()
        append = index.own("repro.faults.journal.MutationJournal.append")
        assert {"open_append", "write", "flush", "fsync"} <= append
        read = index.effects("repro.faults.journal.MutationJournal._read")
        assert read.by_kind("jsonl_read")
        assert not read.by_kind("jsonl_read_unguarded")


class TestExportDeterminism:
    SOURCE = """
    import os


    def publish(directory, payload):
        tmp = directory / "state.json.tmp"
        with open(tmp, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, directory / "state.json")
    """

    def test_payload_carries_schema_3_effects(self, tmp_path):
        write(tmp_path, "src/repro/fx.py", self.SOURCE)
        graph = build(tmp_path, "src/repro/fx.py")
        payload = json.loads(graph.to_json())
        assert payload["schema_version"] == 3
        entry = payload["effects"]["repro.fx.publish"]
        assert entry["own"] == sorted(entry["own"])
        assert "rename" in entry["own"]
        assert "fsync" in entry["transitive"]

    def test_cached_and_fresh_graphs_export_identically(self, tmp_path):
        target = write(tmp_path, "src/repro/fx.py", self.SOURCE)
        first = build(tmp_path, "src/repro/fx.py")
        exported = first.to_json()
        # Same content, bumped mtime: the graph cache misses and effects
        # are re-extracted from a fresh parse.
        stat = target.stat()
        os.utime(target, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
        second = build(tmp_path, "src/repro/fx.py")
        assert second is not first
        assert second.to_json() == exported


class TestCfgSeams:
    """The public CFG surface the durability rules are built on."""

    def test_build_cfg_and_reachability(self):
        fn = ast.parse(
            textwrap.dedent(
                """
                def f(flag):
                    a = 1
                    if flag:
                        b = 2
                    return a
                """
            )
        ).body[0]
        nodes = dataflow.build_cfg(fn.body)
        reach = dataflow.node_reachability(nodes)
        # Entry reaches every other statement; the return reaches nothing.
        assert reach[0] == {1, 2, 3}
        assert reach[len(nodes) - 1] == set()

    def test_walk_statement_exprs_stays_on_the_header(self):
        stmt = ast.parse("if call_a():\n    call_b()\n").body[0]
        calls = [
            expr
            for expr in dataflow.walk_statement_exprs(stmt)
            if isinstance(expr, ast.Call)
        ]
        assert [call.func.id for call in calls] == ["call_a"]
