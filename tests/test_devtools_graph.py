"""Unit tests for the whole-program graph (`repro.devtools.graph`)."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.devtools import graph as graphmod

REPO_ROOT = Path(__file__).resolve().parent.parent


def write(root, relative, content):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(content))
    return path


def build(root, *relatives):
    return graphmod.build_graph([root / rel for rel in relatives], root=root)


class TestSymbolTable:
    def test_modules_definitions_and_public_surface(self, tmp_path):
        write(
            tmp_path,
            "src/repro/alpha.py",
            """
            __all__ = ["visible"]

            def visible():
                return 1

            def _hidden():
                return 2

            class Widget:
                def method(self):
                    return 3
            """,
        )
        graph = build(tmp_path, "src/repro/alpha.py")
        module = graph.modules["repro.alpha"]
        assert module.all_exports == ("visible",)
        assert {"visible", "_hidden", "Widget", "Widget.method"} <= module.definitions
        assert set(module.public) == {"visible", "Widget"}

    def test_registration_decorated_symbols_not_public(self, tmp_path):
        write(
            tmp_path,
            "src/repro/alpha.py",
            """
            from repro.beta import registry
            from dataclasses import dataclass

            @registry.register
            class Registered:
                pass

            @dataclass
            class Plain:
                x: int = 0
            """,
        )
        graph = build(tmp_path, "src/repro/alpha.py")
        module = graph.modules["repro.alpha"]
        assert "Registered" not in module.public
        assert "Plain" in module.public

    def test_dataclass_fields_collected_with_linenos(self, tmp_path):
        write(
            tmp_path,
            "src/repro/conf.py",
            """
            class Config:
                seed: int = 0
                scale: int = 1000
            """,
        )
        graph = build(tmp_path, "src/repro/conf.py")
        fields = dict(graph.modules["repro.conf"].dataclass_fields["Config"])
        assert fields == {"seed": 3, "scale": 4}


class TestImportGraph:
    def test_repro_imports_resolved_including_relative(self, tmp_path):
        write(tmp_path, "src/repro/pkg/__init__.py", "")
        write(tmp_path, "src/repro/pkg/a.py", "from repro.pkg import b\n")
        write(tmp_path, "src/repro/pkg/b.py", "from . import c\nimport os\n")
        write(tmp_path, "src/repro/pkg/c.py", "")
        graph = build(
            tmp_path,
            "src/repro/pkg/__init__.py",
            "src/repro/pkg/a.py",
            "src/repro/pkg/b.py",
            "src/repro/pkg/c.py",
        )
        edges = graph.import_edges()
        assert edges["repro.pkg.a"] == ("repro.pkg",)
        assert edges["repro.pkg.b"] == ("repro.pkg",)


class TestCallGraph:
    def test_local_and_cross_module_calls_resolve(self, tmp_path):
        write(
            tmp_path,
            "src/repro/util.py",
            """
            def helper():
                return 1
            """,
        )
        write(
            tmp_path,
            "src/repro/mainmod.py",
            """
            from repro.util import helper

            def local():
                return 0

            def driver():
                local()
                return helper()
            """,
        )
        graph = build(tmp_path, "src/repro/util.py", "src/repro/mainmod.py")
        driver = graph.functions["repro.mainmod.driver"]
        assert set(driver.calls) == {
            "repro.mainmod.local",
            "repro.util.helper",
        }

    def test_reexport_chain_resolves_through_package_init(self, tmp_path):
        write(
            tmp_path,
            "src/repro/tel/__init__.py",
            "from repro.tel.registry import use\n",
        )
        write(
            tmp_path,
            "src/repro/tel/registry.py",
            """
            def use():
                return 1
            """,
        )
        write(
            tmp_path,
            "src/repro/job.py",
            """
            from repro.tel import use

            def work():
                return use()
            """,
        )
        graph = build(
            tmp_path,
            "src/repro/tel/__init__.py",
            "src/repro/tel/registry.py",
            "src/repro/job.py",
        )
        assert graph.functions["repro.job.work"].calls == (
            "repro.tel.registry.use",
        )

    def test_self_method_binds_to_enclosing_class(self, tmp_path):
        write(
            tmp_path,
            "src/repro/obj.py",
            """
            class Engine:
                def run(self):
                    return self.step()

                def step(self):
                    return 1
            """,
        )
        graph = build(tmp_path, "src/repro/obj.py")
        assert graph.functions["repro.obj.Engine.run"].calls == (
            "repro.obj.Engine.step",
        )

    def test_callable_argument_becomes_indirect_edge(self, tmp_path):
        write(
            tmp_path,
            "src/repro/cb.py",
            """
            def callback(x):
                return x

            def driver(values):
                return sorted(values, key=callback)
            """,
        )
        graph = build(tmp_path, "src/repro/cb.py")
        assert "repro.cb.callback" in graph.functions["repro.cb.driver"].calls

    def test_nested_function_reachable_from_parent(self, tmp_path):
        write(
            tmp_path,
            "src/repro/nest.py",
            """
            def outer():
                def inner():
                    return 1
                return inner
            """,
        )
        graph = build(tmp_path, "src/repro/nest.py")
        assert "repro.nest.outer.inner" in graph.functions["repro.nest.outer"].calls

    def test_reachability_closure(self, tmp_path):
        write(
            tmp_path,
            "src/repro/chain.py",
            """
            def a():
                return b()

            def b():
                return c()

            def c():
                return 1

            def unrelated():
                return 2
            """,
        )
        graph = build(tmp_path, "src/repro/chain.py")
        reachable = graph.reachable_from(["repro.chain.a"])
        assert reachable == {"repro.chain.a", "repro.chain.b", "repro.chain.c"}


class TestFactCollection:
    def test_pool_entry_points(self, tmp_path):
        write(
            tmp_path,
            "src/repro/work.py",
            """
            def task(n):
                return n

            def run(pool, xs):
                return [pool.submit(task, x) for x in xs]
            """,
        )
        graph = build(tmp_path, "src/repro/work.py")
        entries = graph.pool_entry_points()
        assert set(entries) == {"repro.work.task"}
        assert entries["repro.work.task"].kind == "submit"

    def test_pool_task_kwarg_counts_as_entry_point(self, tmp_path):
        # the recovery seam submits its pool_task= argument on the
        # caller's behalf (ResilientExecutor), so the indirection must
        # still register the worker-side callable
        write(
            tmp_path,
            "src/repro/work.py",
            """
            def chunk_task(chunk_id, attempt, payload):
                return payload

            def run(executor_cls, payloads):
                return executor_cls(payloads=payloads, pool_task=chunk_task)
            """,
        )
        graph = build(tmp_path, "src/repro/work.py")
        entries = graph.pool_entry_points()
        assert set(entries) == {"repro.work.chunk_task"}
        assert entries["repro.work.chunk_task"].kind == "submit"

    def test_metric_literals_and_fstring_wildcards(self, tmp_path):
        write(
            tmp_path,
            "src/repro/met.py",
            """
            def record(telemetry, name):
                telemetry.counter("stage.count", 1)
                telemetry.gauge(f"stage.era.{name}.depth", 2)
            """,
        )
        graph = build(tmp_path, "src/repro/met.py")
        names = {call.name for call in graph.metric_calls()}
        assert names == {"stage.count", "stage.era.*.depth"}

    def test_global_and_container_writes(self, tmp_path):
        write(
            tmp_path,
            "src/repro/state.py",
            """
            _MODE = "fast"
            _CACHE = {}

            def set_mode(mode):
                global _MODE
                _MODE = mode

            def remember(key, value):
                _CACHE[key] = value
            """,
        )
        graph = build(tmp_path, "src/repro/state.py")
        assert graph.functions["repro.state.set_mode"].global_writes == ["_MODE"]
        assert "_CACHE" in graph.functions["repro.state.remember"].container_writes
        assert graph.modules["repro.state"].mutable_globals == {"_CACHE"}

    def test_argparse_and_config_kwargs(self, tmp_path):
        write(
            tmp_path,
            "src/repro/cli.py",
            """
            import argparse

            def main():
                parser = argparse.ArgumentParser()
                parser.add_argument("--batchgcd-k", type=int)
                parser.add_argument("input", dest="source")
                args = parser.parse_args()
                config = load()
                return config.with_(batchgcd_k=args.batchgcd_k)
            """,
        )
        graph = build(tmp_path, "src/repro/cli.py")
        module = graph.modules["repro.cli"]
        assert [flag.dest for flag in module.argparse_flags] == [
            "batchgcd_k",
            "source",
        ]
        assert [kwarg for kwarg, _ in module.config_kwargs] == ["batchgcd_k"]
        assert "batchgcd_k" in module.call_kwargs


class TestRouteFacts:
    SERVER = """
    _ROUTES = []

    def route(method, pattern):
        def wrap(fn):
            _ROUTES.append((method, pattern, fn))
            return fn
        return wrap

    class Server:
        @route("GET", "/healthz")
        async def health(self, request):
            return None

        @route("POST", "/v1/jobs/<job_id>/pause")
        async def pause(self, request, job_id):
            return None
    """

    def test_decorator_routes_collected(self, tmp_path):
        write(tmp_path, "src/repro/server.py", self.SERVER)
        graph = build(tmp_path, "src/repro/server.py")
        routes = {(call.method, call.pattern) for call in graph.route_calls()}
        assert routes == {
            ("GET", "/healthz"),
            ("POST", "/v1/jobs/<job_id>/pause"),
        }
        assert all(
            call.path.endswith("src/repro/server.py")
            for call in graph.route_calls()
        )

    def test_plain_call_registration_collected(self, tmp_path):
        write(
            tmp_path,
            "src/repro/server.py",
            """
            def install(app):
                app.add_route("GET", "/v1/queue")
            """,
        )
        graph = build(tmp_path, "src/repro/server.py")
        assert [(c.method, c.pattern) for c in graph.route_calls()] == [
            ("GET", "/v1/queue")
        ]

    def test_non_routes_ignored(self, tmp_path):
        write(
            tmp_path,
            "src/repro/server.py",
            """
            def setup(app, method):
                app.add_route("FETCH", "/nope")     # unknown HTTP method
                app.add_route("GET", "relative")    # pattern must start with /
                app.add_route(method, "/dynamic")   # non-literal method
                route = object()
            """,
        )
        graph = build(tmp_path, "src/repro/server.py")
        assert graph.route_calls() == []

    def test_routes_in_json_payload(self, tmp_path):
        write(tmp_path, "src/repro/server.py", self.SERVER)
        graph = build(tmp_path, "src/repro/server.py")
        payload = json.loads(graph.to_json())
        assert payload["routes"] == [
            "GET /healthz",
            "POST /v1/jobs/<job_id>/pause",
        ]


class TestCachingAndDeterminism:
    def test_same_tree_hits_cache(self, tmp_path):
        write(tmp_path, "src/repro/a.py", "def f():\n    return 1\n")
        first = build(tmp_path, "src/repro/a.py")
        second = build(tmp_path, "src/repro/a.py")
        assert first is second

    def test_edit_invalidates_cache(self, tmp_path):
        target = write(tmp_path, "src/repro/a.py", "def f():\n    return 1\n")
        first = build(tmp_path, "src/repro/a.py")
        target.write_text("def f():\n    return 2\n\n\ndef g():\n    return 3\n")
        second = build(tmp_path, "src/repro/a.py")
        assert first is not second
        assert "repro.a.g" in second.functions

    def test_json_payload_is_deterministic(self, tmp_path):
        write(tmp_path, "src/repro/b.py", "def f():\n    return 1\n")
        graph = build(tmp_path, "src/repro/b.py")
        assert graph.to_json() == graph.to_json()
        payload = json.loads(graph.to_json())
        assert payload["schema_version"] == 3
        assert "repro.b" in payload["modules"]

    def test_dot_export_shapes(self, tmp_path):
        write(tmp_path, "src/repro/c.py", "import repro.d\n")
        write(tmp_path, "src/repro/d.py", "def f():\n    return 1\n")
        graph = build(tmp_path, "src/repro/c.py", "src/repro/d.py")
        dot = graph.to_dot("imports")
        assert dot.startswith("digraph repro_imports {")
        assert '"repro.c" -> "repro.d";' in dot
        assert graph.to_dot("calls").startswith("digraph repro_calls {")


class TestGraphCli:
    def run_graph(self, *args, cwd=REPO_ROOT):
        return subprocess.run(
            [sys.executable, "-m", "repro.devtools.graph", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )

    def test_json_export_is_byte_identical_across_runs(self):
        first = self.run_graph("--json")
        second = self.run_graph("--json")
        assert first.returncode == 0, first.stderr
        assert first.stdout == second.stdout
        payload = json.loads(first.stdout)
        assert "repro.core.clustered" in payload["modules"]
        assert payload["pool_entry_points"]  # the batch-GCD workers

    def test_dot_export(self, tmp_path):
        out = tmp_path / "imports.dot"
        result = self.run_graph("--dot", "imports", "--out", str(out))
        assert result.returncode == 0, result.stderr
        assert out.read_text().startswith("digraph repro_imports {")
