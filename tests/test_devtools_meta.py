"""Meta-test: reprolint over this repository must be clean.

This is the same gate CI runs (``python -m repro.devtools.lint src tests
benchmarks examples``): zero findings — per-file rules and the
cross-module X rules alike — that are not suppressed inline or
grandfathered in the committed ``reprolint-baseline.json``.  A second
check seeds a violation into a copy of a real module and asserts the
linter catches it, so the gate cannot silently go blind.
"""

import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

LINT_PATHS = ("src", "tests", "benchmarks", "examples")


def run_lint(*args, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": str(REPO_ROOT / "src")},
    )


class TestRepositoryIsClean:
    def test_whole_tree_has_no_new_findings(self):
        result = run_lint(*LINT_PATHS, "--format", "json")
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["findings"] == []

    def test_default_paths_match_the_ci_gate(self):
        """Bare ``python -m repro.devtools.lint`` lints the same four trees."""
        result = run_lint("--format", "json")
        assert result.returncode == 0, result.stdout + result.stderr
        explicit = run_lint(*LINT_PATHS, "--format", "json")
        assert json.loads(result.stdout) == json.loads(explicit.stdout)

    def test_baseline_is_fully_used(self):
        """Every grandfathered allowance still matches a real finding."""
        result = run_lint(*LINT_PATHS, "--format", "json")
        payload = json.loads(result.stdout)
        assert payload["stale_baseline_entries"] == []

    def test_baseline_only_grandfathers_det003(self):
        """The baseline is for the known duration-clock sites, nothing else."""
        payload = json.loads((REPO_ROOT / "reprolint-baseline.json").read_text())
        rules = {entry["rule"] for entry in payload["entries"]}
        assert rules == {"DET003"}
        assert all(entry["justification"] for entry in payload["entries"])


class TestGateStillBites:
    def test_seeded_violation_fails(self, tmp_path):
        """Copy a real module, plant an unseeded RNG, expect exit 1."""
        victim = tmp_path / "src" / "repro" / "planted.py"
        victim.parent.mkdir(parents=True)
        source = (REPO_ROOT / "src" / "repro" / "numt" / "primality.py").read_text()
        victim.write_text(source + "\n\n_PLANTED = random.Random()\n")
        result = run_lint("src", cwd=tmp_path)
        assert result.returncode == 1, result.stdout + result.stderr
        assert "DET001" in result.stdout

    def test_seeded_cross_module_violation_fails(self, tmp_path):
        """Plant a pool-reachable global mutation, expect XPAR001 at exit 1."""
        victim = tmp_path / "src" / "repro" / "planted.py"
        victim.parent.mkdir(parents=True)
        victim.write_text(
            "_STATE = {}\n"
            "\n"
            "\n"
            "def task(n):\n"
            "    _STATE[n] = n\n"
            "    return n\n"
            "\n"
            "\n"
            "def run(pool, values):\n"
            "    return [pool.submit(task, value) for value in values]\n"
        )
        result = run_lint("src", cwd=tmp_path)
        assert result.returncode == 1, result.stdout + result.stderr
        assert "XPAR001" in result.stdout

    def plant(self, tmp_path, source):
        victim = tmp_path / "src" / "repro" / "planted.py"
        victim.parent.mkdir(parents=True)
        victim.write_text(source)
        return run_lint("src", cwd=tmp_path)

    def test_planted_asy001_blocking_call_fails(self, tmp_path):
        result = self.plant(
            tmp_path,
            "import time\n"
            "\n"
            "\n"
            "async def _handler():\n"
            "    return _work()\n"
            "\n"
            "\n"
            "def _work():\n"
            "    time.sleep(0.2)\n"
            "    return 1\n",
        )
        assert result.returncode == 1, result.stdout + result.stderr
        assert "ASY001" in result.stdout

    def test_planted_asy002_unawaited_coroutine_fails(self, tmp_path):
        result = self.plant(
            tmp_path,
            "async def _job():\n"
            "    return 1\n"
            "\n"
            "\n"
            "def _kick():\n"
            "    _job()\n",
        )
        assert result.returncode == 1, result.stdout + result.stderr
        assert "ASY002" in result.stdout

    def test_planted_asy003_discarded_task_fails(self, tmp_path):
        result = self.plant(
            tmp_path,
            "import asyncio\n"
            "\n"
            "\n"
            "async def _job():\n"
            "    return 1\n"
            "\n"
            "\n"
            "async def _go():\n"
            "    asyncio.create_task(_job())\n",
        )
        assert result.returncode == 1, result.stdout + result.stderr
        assert "ASY003" in result.stdout

    def test_planted_asy004_rmw_hazard_fails(self, tmp_path):
        result = self.plant(
            tmp_path,
            "import asyncio\n"
            "\n"
            "\n"
            "class _Counter:\n"
            "    def __init__(self):\n"
            "        self._n = 0\n"
            "\n"
            "    async def bump(self):\n"
            "        n = self._n\n"
            "        await asyncio.sleep(0)\n"
            "        self._n = n + 1\n",
        )
        assert result.returncode == 1, result.stdout + result.stderr
        assert "ASY004" in result.stdout

    def test_planted_xtnt001_taint_fails(self, tmp_path):
        result = self.plant(
            tmp_path,
            "def route(method, pattern):\n"
            "    def deco(fn):\n"
            "        return fn\n"
            "    return deco\n"
            "\n"
            "\n"
            '@route("GET", "/v1/jobs/<job_id>")\n'
            "async def _get_job(job_id):\n"
            "    return int(job_id, 16)\n",
        )
        assert result.returncode == 1, result.stdout + result.stderr
        assert "XTNT001" in result.stdout

    def test_planted_dur001_unsynced_rename_source_fails(self, tmp_path):
        result = self.plant(
            tmp_path,
            "import os\n"
            "\n"
            "\n"
            "def publish(directory, payload):\n"
            '    tmp = directory / "data.tmp"\n'
            "    tmp.write_text(payload)\n"
            '    os.replace(tmp, directory / "data.json")\n',
        )
        assert result.returncode == 1, result.stdout + result.stderr
        assert "DUR001" in result.stdout

    def test_planted_dur002_in_place_commit_point_fails(self, tmp_path):
        result = self.plant(
            tmp_path,
            "def commit(directory, payload):\n"
            '    (directory / "manifest.json").write_text(payload)\n',
        )
        assert result.returncode == 1, result.stdout + result.stderr
        assert "DUR002" in result.stdout

    def test_planted_dur003_mutation_before_append_fails(self, tmp_path):
        result = self.plant(
            tmp_path,
            "from repro.faults.journal import MutationJournal\n"
            "\n"
            "\n"
            "class Store:\n"
            "    def __init__(self, directory):\n"
            '        self._journal = MutationJournal(directory / "journal.jsonl")\n'
            '        self._path = directory / "state.json"\n'
            "\n"
            "    def mutate(self, record, fast):\n"
            "        if fast:\n"
            '            self._journal.append({"r": record})\n'
            "        self._path.write_text(record)\n",
        )
        assert result.returncode == 1, result.stdout + result.stderr
        assert "DUR003" in result.stdout

    def test_planted_dur004_rename_without_dir_fsync_fails(self, tmp_path):
        result = self.plant(
            tmp_path,
            "import os\n"
            "\n"
            "\n"
            "def publish(directory, payload):\n"
            '    tmp = directory / "data.tmp"\n'
            '    with open(tmp, "w", encoding="utf-8") as handle:\n'
            "        handle.write(payload)\n"
            "        handle.flush()\n"
            "        os.fsync(handle.fileno())\n"
            '    os.replace(tmp, directory / "data.json")\n',
        )
        assert result.returncode == 1, result.stdout + result.stderr
        assert "DUR004" in result.stdout
        # The source file *was* fsynced — only the directory entry is at
        # risk, so the stricter DUR001 must stay quiet.
        assert "DUR001" not in result.stdout

    def test_planted_dur005_torn_tail_reader_fails(self, tmp_path):
        result = self.plant(
            tmp_path,
            "import json\n"
            "\n"
            "\n"
            "def load(path):\n"
            "    records = []\n"
            "    for line in path.read_text().splitlines():\n"
            "        records.append(json.loads(line))\n"
            "    return records\n",
        )
        assert result.returncode == 1, result.stdout + result.stderr
        assert "DUR005" in result.stdout


class TestLintRuntimeBudget:
    def test_full_run_stays_under_budget(self):
        """The gate (all rules, whole-program graph, coloring, dataflow)
        must stay cheap enough for the pre-commit loop."""
        started = time.monotonic()
        result = run_lint(*LINT_PATHS, "--format", "json")
        elapsed = time.monotonic() - started
        assert result.returncode == 0, result.stdout + result.stderr
        assert elapsed < 30.0, f"lint took {elapsed:.1f}s — budget is 30s"

    def test_no_single_rule_dominates(self):
        """--stats: every rule (and the graph build) stays under 10s, so
        one expensive rule cannot quietly eat the whole 30s budget."""
        result = run_lint(*LINT_PATHS, "--format", "json", "--stats")
        assert result.returncode == 0, result.stdout + result.stderr
        rule_seconds = json.loads(result.stdout)["stats"]["rule_seconds"]
        assert rule_seconds, "stats were requested but not reported"
        over = {
            code: seconds
            for code, seconds in rule_seconds.items()
            if seconds >= 10.0
        }
        assert not over, f"rules over the 10s per-rule budget: {over}"
