"""Per-rule fixtures for reprolint: positive, negative, and suppressed."""

import textwrap

import pytest

from repro.devtools import LintEngine

REPRO_PATH = "src/repro/somemodule.py"
TEST_PATH = "tests/test_somemodule.py"


@pytest.fixture(scope="module")
def engine():
    return LintEngine()


def lint(engine, snippet, path=REPRO_PATH):
    return engine.lint_source(textwrap.dedent(snippet), path)


def codes(engine, snippet, path=REPRO_PATH):
    return [f.rule for f in lint(engine, snippet, path)]


class TestDet001UnseededRng:
    def test_positive_no_arg_random(self, engine):
        findings = lint(
            engine,
            """
            import random

            def pick(values):
                rng = random.Random()
                return rng.choice(values)
            """,
        )
        assert [f.rule for f in findings] == ["DET001"]
        assert findings[0].line == 5
        assert "seed" in findings[0].message

    def test_positive_global_rng_call_in_repro(self, engine):
        assert codes(
            engine,
            """
            import random

            def jitter():
                return random.random()
            """,
        ) == ["DET001"]

    def test_positive_from_import_alias(self, engine):
        assert codes(
            engine,
            """
            from random import Random as R

            rng = R()
            """,
        ) == ["DET001"]

    def test_negative_seeded(self, engine):
        assert codes(
            engine,
            """
            import random

            rng = random.Random(42)
            value = rng.random()
            """,
        ) == []

    def test_negative_global_rng_outside_repro(self, engine):
        # module-level random.* is scoped to src/repro by the spec
        assert codes(
            engine,
            """
            import random

            value = random.randrange(10)
            """,
            path=TEST_PATH,
        ) == []

    def test_negative_lookalike_method(self, engine):
        assert codes(
            engine,
            """
            def run(rng):
                return rng.random()
            """,
        ) == []

    def test_suppressed(self, engine):
        assert codes(
            engine,
            """
            import random

            rng = random.Random()  # reprolint: disable=DET001
            """,
        ) == []


class TestDet002WallClock:
    def test_positive_time_time(self, engine):
        assert codes(
            engine,
            """
            import time

            stamp = time.time()
            """,
        ) == ["DET002"]

    def test_positive_datetime_now_from_import(self, engine):
        assert codes(
            engine,
            """
            from datetime import datetime

            today = datetime.now()
            """,
        ) == ["DET002"]

    def test_positive_date_today(self, engine):
        assert codes(
            engine,
            """
            import datetime

            day = datetime.date.today()
            """,
        ) == ["DET002"]

    def test_negative_clock_module_exempt(self, engine):
        assert codes(
            engine,
            """
            import time

            def wall():
                return time.time()
            """,
            path="src/repro/telemetry/clock.py",
        ) == []

    def test_negative_instance_now(self, engine):
        # .now() on an unresolvable receiver must not fire
        assert codes(
            engine,
            """
            def f(clock):
                return clock.now()
            """,
        ) == []


class TestDet003DurationClock:
    def test_positive_perf_counter_in_repro(self, engine):
        findings = lint(
            engine,
            """
            import time

            start = time.perf_counter()
            """,
        )
        assert [f.rule for f in findings] == ["DET003"]
        assert findings[0].severity.value == "warning"

    def test_negative_outside_repro(self, engine):
        assert codes(
            engine,
            """
            import time

            start = time.perf_counter()
            """,
            path=TEST_PATH,
        ) == []


class TestTel001DiscardedHandle:
    def test_positive_bare_span(self, engine):
        assert codes(
            engine,
            """
            from repro.telemetry import span

            def stage():
                span("batch_gcd.products")
            """,
        ) == ["TEL001"]

    def test_positive_method_timer(self, engine):
        assert codes(
            engine,
            """
            def stage(telemetry):
                telemetry.timer("batch_gcd.task")
            """,
        ) == ["TEL001"]

    def test_negative_with_block(self, engine):
        assert codes(
            engine,
            """
            def stage(telemetry):
                with telemetry.span("batch_gcd.products"):
                    pass
            """,
        ) == []

    def test_negative_assigned_handle(self, engine):
        assert codes(
            engine,
            """
            def stage(telemetry):
                handle = telemetry.span("batch_gcd.products")
                return handle
            """,
        ) == []


class TestTel002MetricNames:
    @pytest.mark.parametrize(
        "name",
        ["Batch_GCD.products", "batch gcd", ".products", "batch_gcd..task", "camelCase.x"],
    )
    def test_positive_bad_names(self, engine, name):
        snippet = f"""
        def stage(telemetry):
            telemetry.counter({name!r})
        """
        assert codes(engine, snippet) == ["TEL002"]

    @pytest.mark.parametrize(
        "name", ["batch_gcd.products", "world_build", "scans.era_2012.records"]
    )
    def test_negative_canonical_names(self, engine, name):
        snippet = f"""
        def stage(telemetry):
            telemetry.counter({name!r})
        """
        assert codes(engine, snippet) == []

    def test_negative_dynamic_name_not_checked(self, engine):
        assert codes(
            engine,
            """
            def stage(telemetry, name):
                telemetry.counter(name)
            """,
        ) == []


class TestPar001UnpicklablePoolCallable:
    def test_positive_lambda_submit(self, engine):
        assert codes(
            engine,
            """
            def run(pool, items):
                return [pool.submit(lambda x: x + 1, i) for i in items]
            """,
        ) == ["PAR001"]

    def test_positive_nested_function_map(self, engine):
        findings = lint(
            engine,
            """
            def run(executor, items):
                def work(item):
                    return item + 1
                return list(executor.map(work, items))
            """,
        )
        assert [f.rule for f in findings] == ["PAR001"]
        assert "hoist" in findings[0].message

    def test_negative_module_level_function(self, engine):
        assert codes(
            engine,
            """
            def work(item):
                return item + 1

            def run(pool, items):
                return list(pool.map(work, items))
            """,
        ) == []

    def test_negative_non_pool_map(self, engine):
        assert codes(
            engine,
            """
            def run(frame):
                return frame.map(lambda x: x + 1)
            """,
        ) == []


class TestPar002MutableDefault:
    def test_positive_list_default(self, engine):
        assert codes(
            engine,
            """
            def accumulate(value, into=[]):
                into.append(value)
                return into
            """,
        ) == ["PAR002"]

    def test_positive_dict_call_default(self, engine):
        assert codes(
            engine,
            """
            def merge(extra=dict()):
                return extra
            """,
        ) == ["PAR002"]

    def test_negative_none_default(self, engine):
        assert codes(
            engine,
            """
            def accumulate(value, into=None):
                into = [] if into is None else into
                into.append(value)
                return into
            """,
        ) == []


class TestNum001FloatOnBigint:
    def test_positive_true_division(self, engine):
        assert codes(
            engine,
            """
            def cofactor(modulus, p):
                return modulus / p
            """,
        ) == ["NUM001"]

    def test_positive_math_sqrt(self, engine):
        findings = lint(
            engine,
            """
            import math

            def root(modulus):
                return math.sqrt(modulus)
            """,
        )
        assert [f.rule for f in findings] == ["NUM001"]
        assert "isqrt" in findings[0].message

    def test_positive_float_cast(self, engine):
        assert codes(
            engine,
            """
            def approx(prime):
                return float(prime)
            """,
        ) == ["NUM001"]

    def test_negative_floor_division(self, engine):
        assert codes(
            engine,
            """
            def cofactor(modulus, p):
                return modulus // p
            """,
        ) == []

    def test_negative_unrelated_names(self, engine):
        # counters like primes_examined must not match the heuristic
        assert codes(
            engine,
            """
            def rate(satisfying, primes_examined):
                return satisfying / primes_examined
            """,
        ) == []


class TestEngineBehaviour:
    def test_parse_error_is_a_finding(self, engine):
        findings = lint(engine, "def broken(:\n")
        assert [f.rule for f in findings] == ["PARSE"]

    def test_skip_file_directive(self, engine):
        assert codes(
            engine,
            """
            # reprolint: skip-file  (vendored example)
            import random

            rng = random.Random()
            """,
        ) == []

    def test_suppression_on_preceding_comment_line(self, engine):
        assert codes(
            engine,
            """
            import random

            # reprolint: disable=DET001
            rng = random.Random()
            """,
        ) == []

    def test_suppression_is_rule_specific(self, engine):
        assert codes(
            engine,
            """
            import random

            rng = random.Random()  # reprolint: disable=DET002
            """,
        ) == ["DET001"]

    def test_multiple_rules_one_line(self, engine):
        assert codes(
            engine,
            """
            import random, time

            def f():
                return random.random(), time.time()
            """,
        ) == ["DET001", "DET002"]


class TestFlt001UnboundedFutureWait:
    def test_positive_bare_result(self, engine):
        findings = lint(
            engine,
            """
            def drain(futures):
                return [future.result() for future in futures]
            """,
        )
        assert [f.rule for f in findings] == ["FLT001"]
        assert "timeout" in findings[0].message

    def test_positive_bare_exception(self, engine):
        assert codes(
            engine,
            """
            def inspect(fut):
                return fut.exception()
            """,
        ) == ["FLT001"]

    def test_positive_wait_without_timeout(self, engine):
        assert codes(
            engine,
            """
            from concurrent.futures import wait

            def drain(pending):
                done, _ = wait(pending)
                return done
            """,
        ) == ["FLT001"]

    def test_positive_as_completed_without_timeout(self, engine):
        assert codes(
            engine,
            """
            import concurrent.futures

            def drain(pending):
                return list(concurrent.futures.as_completed(pending))
            """,
        ) == ["FLT001"]

    def test_negative_result_with_timeout(self, engine):
        assert codes(
            engine,
            """
            def drain(futures):
                return [future.result(timeout=0) for future in futures]
            """,
        ) == []

    def test_negative_positional_timeout(self, engine):
        assert codes(
            engine,
            """
            def drain(fut):
                return fut.result(5.0)
            """,
        ) == []

    def test_negative_wait_with_timeout(self, engine):
        assert codes(
            engine,
            """
            from concurrent.futures import wait

            def drain(pending):
                done, _ = wait(pending, timeout=1.0)
                return done
            """,
        ) == []

    def test_negative_non_future_receiver(self, engine):
        assert codes(
            engine,
            """
            def run(query):
                return query.result()
            """,
        ) == []

    def test_negative_outside_repro_source(self, engine):
        assert codes(
            engine,
            """
            def drain(futures):
                return [future.result() for future in futures]
            """,
            path=TEST_PATH,
        ) == []

    def test_suppressed(self, engine):
        assert codes(
            engine,
            """
            def drain(fut):
                return fut.result()  # reprolint: disable=FLT001
            """,
        ) == []
