"""Tests for the notification-campaign simulator."""

import random

from repro.devices.vendors import notified_2012_vendors
from repro.disclosure.process import (
    ContactChannel,
    NotificationCampaign,
)
from repro.timeline import Month


def run_campaign(seed, cert_fraction=0.6):
    campaign = NotificationCampaign(Month(2012, 2), cert_fraction=cert_fraction)
    return campaign.run(notified_2012_vendors(), random.Random(seed))


SEEDS = range(30)


def average_over_seeds(attribute, seeds=SEEDS, **kwargs):
    total = 0.0
    for seed in seeds:
        summary = run_campaign(seed, **kwargs)
        total += getattr(summary, attribute)
    return total / len(list(seeds))


class TestCampaignShape:
    def test_all_vendors_notified(self):
        summary = run_campaign(1)
        assert summary.notified == 37

    def test_advisories_cluster_around_five(self):
        # Table 2: five vendors released public advisories.
        mean = average_over_seeds("advisories")
        assert 3.0 < mean < 8.0

    def test_acknowledgement_about_half_at_most(self):
        # "About half of the vendors acknowledged receipt" (including the
        # private responders); silence dominates the rest.
        mean = average_over_seeds("acknowledged")
        assert 8 < mean < 20

    def test_contact_discovery_rate(self):
        # 16 of 42 vendors had a discoverable contact (Sections 2.5/4.4).
        mean = average_over_seeds("contacts_found")
        assert 10 < mean < 19

    def test_response_latency_positive(self):
        summary = run_campaign(2)
        days = summary.mean_response_days()
        assert days is None or days > 0


class TestCertCoordination:
    def test_cert_channel_used_for_unreachable_vendors(self):
        summary = run_campaign(3, cert_fraction=1.0)
        channels = {o.channel for o in summary.outcomes}
        assert ContactChannel.CERT_COORDINATION in channels
        assert not any(
            o.channel is ContactChannel.GENERIC_ALIAS for o in summary.outcomes
        )

    def test_cert_routing_increases_responses(self):
        # The paper: CERT coordination produced additional advisories; in
        # aggregate, full CERT routing must not do worse than none.
        with_cert = average_over_seeds("acknowledged", cert_fraction=1.0)
        without = average_over_seeds("acknowledged", cert_fraction=0.0)
        assert with_cert >= without

    def test_cert_assisted_advisories_counted(self):
        total = sum(
            run_campaign(seed, cert_fraction=1.0).cert_assisted_advisories
            for seed in range(20)
        )
        assert total > 0


class TestOutcomeConsistency:
    def test_advisory_implies_acknowledgement(self):
        for seed in range(10):
            for outcome in run_campaign(seed).outcomes:
                if outcome.advisory is not None:
                    assert outcome.acknowledged is not None
                    assert outcome.advisory >= outcome.acknowledged

    def test_responders_have_latency(self):
        for outcome in run_campaign(4).outcomes:
            if outcome.acknowledged is not None:
                assert outcome.response_days and outcome.response_days > 0
            else:
                assert outcome.response_days is None

    def test_empty_campaign(self):
        campaign = NotificationCampaign(Month(2012, 2))
        summary = campaign.run([], random.Random(1))
        assert summary.notified == 0
        assert summary.mean_response_days() is None
