"""Tests for the boot-sequence simulator and the entropy-hole ordering."""

import random

import pytest

from repro.entropy.boot import DeviceBootSimulator
from repro.entropy.pool import InsufficientEntropyError
from repro.entropy.sources import (
    BootClockSource,
    HardwareRngSource,
    NetworkInterruptSource,
)


class TestFlawedBoot:
    """A flawed device mixes (almost) nothing before key generation."""

    def test_unseeded_at_keygen(self, rng):
        simulator = DeviceBootSimulator(
            premix_sources=[BootClockSource(distinct_values=2)],
            postmix_sources=[HardwareRngSource()],
        )
        outcome = simulator.boot(rng)
        assert not outcome.seeded_at_keygen

    def test_identical_boots_collide(self):
        # Two devices with the same (tiny) boot-state space can end up in
        # identical pool states - the shared-prime precondition.
        simulator = DeviceBootSimulator(
            premix_sources=[BootClockSource(distinct_values=1)]
        )
        a = simulator.boot(random.Random(1))
        b = simulator.boot(random.Random(2))
        assert a.pool.read(32) == b.pool.read(32)

    def test_getrandom_would_have_refused(self, rng):
        simulator = DeviceBootSimulator(
            premix_sources=[BootClockSource(distinct_values=4)]
        )
        outcome = simulator.boot(rng)
        with pytest.raises(InsufficientEntropyError):
            outcome.pool.getrandom(32)

    def test_postmix_diverges_later_reads(self):
        # Divergence arrives after the first key: the paper's "identical
        # first prime, divergent second prime" pattern.
        simulator = DeviceBootSimulator(
            premix_sources=[BootClockSource(distinct_values=1)],
            postmix_sources=[NetworkInterruptSource(events=8)],
        )
        a = simulator.boot(random.Random(1))
        b = simulator.boot(random.Random(2))
        first_a, first_b = a.pool.read(32), b.pool.read(32)
        assert first_a == first_b
        simulator.continue_after_keygen(a, random.Random(3))
        simulator.continue_after_keygen(b, random.Random(4))
        assert a.pool.read(32) != b.pool.read(32)


class TestPatchedBoot:
    """A patched device seeds properly before key generation."""

    def test_seeded_at_keygen(self, rng):
        simulator = DeviceBootSimulator(premix_sources=[HardwareRngSource()])
        outcome = simulator.boot(rng)
        assert outcome.seeded_at_keygen
        assert len(outcome.pool.getrandom(32)) == 32

    def test_distinct_devices_distinct_keys(self):
        simulator = DeviceBootSimulator(premix_sources=[HardwareRngSource()])
        a = simulator.boot(random.Random(1))
        b = simulator.boot(random.Random(2))
        assert a.pool.read(32) != b.pool.read(32)

    def test_mix_log_records_sources(self, rng):
        simulator = DeviceBootSimulator(
            premix_sources=[BootClockSource(), HardwareRngSource()]
        )
        outcome = simulator.boot(rng)
        assert [name for name, _ in outcome.mixed_log] == [
            "boot-clock",
            "hardware-rng",
        ]
