"""Tests for keygen profiles: shared primes, the IBM bug, healthy keys."""

import math
import random
from itertools import combinations

import pytest

from repro.crypto.primes import is_openssl_style_prime
from repro.entropy.keygen import (
    HealthyProfile,
    IbmNinePrimeProfile,
    SharedPrimeProfile,
    WeakKeyFactory,
)


@pytest.fixture
def factory(small_openssl_table):
    return WeakKeyFactory(seed=7, prime_bits=48, openssl_table=small_openssl_table)


class TestWeakKeyFactory:
    def test_derived_primes_cached(self, factory):
        a = factory.derive_prime("x", "boot-p", 0, False)
        b = factory.derive_prime("x", "boot-p", 0, False)
        assert a == b

    def test_namespaces_independent(self, factory):
        a = factory.derive_prime("x", "boot-p", 0, False)
        b = factory.derive_prime("y", "boot-p", 0, False)
        c = factory.derive_prime("x", "other", 0, False)
        assert len({a, b, c}) == 3

    def test_deterministic_across_factories(self, small_openssl_table):
        f1 = WeakKeyFactory(seed=7, prime_bits=48, openssl_table=small_openssl_table)
        f2 = WeakKeyFactory(seed=7, prime_bits=48, openssl_table=small_openssl_table)
        assert f1.derive_prime("a", "b", 3, True) == f2.derive_prime("a", "b", 3, True)

    def test_seed_changes_primes(self, small_openssl_table):
        f1 = WeakKeyFactory(seed=7, prime_bits=48, openssl_table=small_openssl_table)
        f2 = WeakKeyFactory(seed=8, prime_bits=48, openssl_table=small_openssl_table)
        assert f1.derive_prime("a", "b", 3, False) != f2.derive_prime("a", "b", 3, False)

    def test_unique_state_never_repeats(self, factory):
        states = {factory.unique_state() for _ in range(100)}
        assert len(states) == 100

    def test_rejects_tiny_primes(self):
        with pytest.raises(ValueError):
            WeakKeyFactory(seed=1, prime_bits=8)


class TestSharedPrimeProfile:
    def test_same_boot_state_shares_first_prime(self, factory):
        profile = SharedPrimeProfile("fleet", boot_states=1, openssl_style=False)
        a = profile.generate(random.Random(1), factory)
        b = profile.generate(random.Random(2), factory)
        g = math.gcd(a.keypair.public.n, b.keypair.public.n)
        assert g > 1
        assert g in (a.keypair.private.p, a.keypair.private.q)

    def test_moduli_distinct_despite_shared_prime(self, factory):
        profile = SharedPrimeProfile("fleet", boot_states=1, openssl_style=False)
        a = profile.generate(random.Random(1), factory)
        b = profile.generate(random.Random(2), factory)
        assert a.keypair.public.n != b.keypair.public.n

    def test_openssl_style_propagates(self, factory, small_openssl_table):
        profile = SharedPrimeProfile("ossl", boot_states=2, openssl_style=True)
        key = profile.generate(random.Random(3), factory)
        assert is_openssl_style_prime(key.keypair.private.p, small_openssl_table)
        assert is_openssl_style_prime(key.keypair.private.q, small_openssl_table)

    def test_metadata(self, factory):
        profile = SharedPrimeProfile("meta", boot_states=5, openssl_style=False)
        key = profile.generate(random.Random(4), factory)
        assert key.weak_by_construction
        assert key.profile_id == "meta"
        assert key.boot_state is not None and 0 <= key.boot_state < 5

    def test_finite_divergence_allows_identical_moduli(self, factory):
        profile = SharedPrimeProfile(
            "dup", boot_states=1, openssl_style=False, divergence_states=1
        )
        a = profile.generate(random.Random(1), factory)
        b = profile.generate(random.Random(2), factory)
        assert a.keypair.public.n == b.keypair.public.n

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SharedPrimeProfile("bad", boot_states=0)
        with pytest.raises(ValueError):
            SharedPrimeProfile("bad", boot_states=2, divergence_states=0)


class TestIbmNinePrimeProfile:
    def test_exactly_36_possible_moduli(self, factory):
        profile = IbmNinePrimeProfile(profile_id="ibm-test")
        moduli = profile.possible_moduli(factory)
        assert len(moduli) == 36
        assert len(set(moduli)) == 36

    def test_generated_keys_stay_in_clique(self, factory):
        profile = IbmNinePrimeProfile(profile_id="ibm-test")
        clique = set(profile.possible_moduli(factory))
        rng = random.Random(9)
        for _ in range(30):
            key = profile.generate(rng, factory)
            assert key.keypair.public.n in clique
            assert key.weak_by_construction

    def test_nine_primes(self, factory):
        profile = IbmNinePrimeProfile(profile_id="ibm-test")
        primes = profile.clique_primes(factory)
        assert len(set(primes)) == 9

    def test_openssl_style_clique(self, factory, small_openssl_table):
        profile = IbmNinePrimeProfile(profile_id="ibm-ossl", openssl_style=True)
        for p in profile.clique_primes(factory):
            assert is_openssl_style_prime(p, small_openssl_table)

    def test_rejects_one_prime(self):
        with pytest.raises(ValueError):
            IbmNinePrimeProfile(profile_id="x", prime_count=1)


class TestHealthyProfile:
    def test_no_shared_factors(self, factory):
        profile = HealthyProfile("healthy")
        rng = random.Random(5)
        moduli = [profile.generate(rng, factory).keypair.public.n for _ in range(20)]
        for a, b in combinations(moduli, 2):
            assert math.gcd(a, b) == 1

    def test_metadata(self, factory):
        key = HealthyProfile("healthy").generate(random.Random(6), factory)
        assert not key.weak_by_construction
        assert key.boot_state is None

    def test_healthy_never_collides_with_weak_pool(self, factory):
        weak = SharedPrimeProfile("pool", boot_states=1, openssl_style=False)
        healthy = HealthyProfile("pool/healthy")
        rng = random.Random(7)
        weak_key = weak.generate(rng, factory)
        for _ in range(10):
            n = healthy.generate(rng, factory).keypair.public.n
            assert math.gcd(n, weak_key.keypair.public.n) == 1
