"""Tests for the /dev/urandom-style entropy pool."""

import pytest

from repro.entropy.pool import SEED_THRESHOLD_BITS, EntropyPool, InsufficientEntropyError


class TestDeterminism:
    def test_identical_histories_identical_output(self):
        a, b = EntropyPool(), EntropyPool()
        for pool in (a, b):
            pool.mix(b"boot", 1.0)
            pool.mix(b"clock=0", 0.5)
        assert a.read(64) == b.read(64)

    def test_unmixed_pools_are_identical(self):
        # The root cause of the flaw: no entropy, no divergence.
        assert EntropyPool().read(32) == EntropyPool().read(32)

    def test_divergent_history_diverges(self):
        a, b = EntropyPool(), EntropyPool()
        a.mix(b"packet-1")
        b.mix(b"packet-2")
        assert a.read(32) != b.read(32)

    def test_mix_order_sensitive(self):
        a, b = EntropyPool(), EntropyPool()
        a.mix(b"x")
        a.mix(b"y")
        b.mix(b"y")
        b.mix(b"x")
        assert a.read(32) != b.read(32)

    def test_fork_clones_state(self):
        a = EntropyPool()
        a.mix(b"shared", 3.0)
        b = a.fork()
        assert a.read(16) == b.read(16)
        assert a.entropy_bits == b.entropy_bits


class TestReads:
    def test_read_lengths(self):
        pool = EntropyPool()
        for n in (0, 1, 31, 32, 33, 100):
            assert len(pool.read(n)) == n

    def test_reads_never_repeat(self):
        pool = EntropyPool()
        assert pool.read(32) != pool.read(32)

    def test_negative_read_rejected(self):
        with pytest.raises(ValueError):
            EntropyPool().read(-1)

    def test_state_fingerprint_changes_on_mix(self):
        pool = EntropyPool()
        before = pool.state_fingerprint()
        pool.mix(b"input")
        assert pool.state_fingerprint() != before


class TestEntropyAccounting:
    def test_unseeded_initially(self):
        assert not EntropyPool().is_seeded

    def test_seeding_threshold(self):
        pool = EntropyPool()
        pool.mix(b"hwrng", SEED_THRESHOLD_BITS)
        assert pool.is_seeded

    def test_negative_credit_rejected(self):
        with pytest.raises(ValueError):
            EntropyPool().mix(b"x", -1.0)

    def test_getrandom_blocks_before_seeded(self):
        # The 2014 getrandom() fix: refuse to emit before seeding.
        pool = EntropyPool()
        pool.mix(b"clock", 2.0)
        with pytest.raises(InsufficientEntropyError):
            pool.getrandom(32)

    def test_getrandom_after_seeded(self):
        pool = EntropyPool()
        pool.mix(b"hwrng", 256.0)
        assert len(pool.getrandom(32)) == 32

    def test_urandom_never_blocks(self):
        # The dangerous pre-fix behaviour: read() answers even when unseeded.
        pool = EntropyPool()
        assert not pool.is_seeded
        assert len(pool.read(32)) == 32
