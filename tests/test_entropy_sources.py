"""Tests for boot-time entropy sources."""

import random

import pytest

from repro.entropy.sources import (
    BootClockSource,
    HardwareRngSource,
    MacAddressSource,
    NetworkInterruptSource,
)


class TestBootClockSource:
    def test_bounded_distinct_values(self, rng):
        source = BootClockSource(distinct_values=4)
        readings = {source.sample(rng)[0] for _ in range(200)}
        assert len(readings) <= 4

    def test_low_entropy_credit(self, rng):
        _data, bits = BootClockSource(distinct_values=64).sample(rng)
        assert bits <= 1.0

    def test_rejects_zero_values(self):
        with pytest.raises(ValueError):
            BootClockSource(distinct_values=0)


class TestMacAddressSource:
    def test_unique_but_zero_entropy(self, rng):
        source = MacAddressSource()
        samples = [source.sample(rng) for _ in range(20)]
        macs = {data for data, _ in samples}
        assert len(macs) == 20  # device-unique
        assert all(bits == 0.0 for _, bits in samples)  # attacker-knowable

    def test_mac_length(self, rng):
        data, _ = MacAddressSource().sample(rng)
        assert len(data) == 6


class TestNetworkInterruptSource:
    def test_entropy_scales_with_events(self, rng):
        low = NetworkInterruptSource(events=2)
        high = NetworkInterruptSource(events=50)
        assert low.sample(rng)[1] < high.sample(rng)[1]

    def test_zero_events_zero_entropy(self, rng):
        _data, bits = NetworkInterruptSource(events=0).sample(rng)
        assert bits == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            NetworkInterruptSource(events=-1)


class TestHardwareRngSource:
    def test_full_entropy(self, rng):
        data, bits = HardwareRngSource(nbytes=32).sample(rng)
        assert len(data) == 32
        assert bits == 256.0

    def test_rejects_zero_bytes(self):
        with pytest.raises(ValueError):
            HardwareRngSource(nbytes=0)

    def test_deterministic_given_rng(self):
        a = HardwareRngSource().sample(random.Random(1))
        b = HardwareRngSource().sample(random.Random(1))
        assert a == b
