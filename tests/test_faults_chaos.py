"""Chaos matrix: every fault kind, every chunked engine, identical results.

The acceptance bar for the fault seam is behavioural: under any plan the
engine can survive, the final :class:`BatchGcdResult` must be *identical*
to the fault-free run, and the recovery counters must match what the
plan's :meth:`~repro.faults.plan.FaultPlan.schedule` predicts.  The
matrix here runs crash / corrupt / slow / timeout faults through both
clustered schedulers *and* the sharded all-to-all engine in-process
(exact counter arithmetic) and through real process pools (worker death,
pool rebuilds), and finishes with the end-to-end drill: SIGKILL the CLI
mid-computation, resume from its checkpoint, and compare output
byte-for-byte against an undisturbed run.

The all-to-all engine rides the same arithmetic because at ``shards=3``
its pass graph is the same shape as clustered ``k=3``: nine single-pass
chunks with ids 0..8.
"""

import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.alltoall import AllToAllBatchGcd
from repro.core.batchgcd import batch_gcd
from repro.core.clustered import ClusteredBatchGcd
from repro.crypto.primes import generate_prime
from repro.faults import FaultPlan, FaultRule, RecoveryPolicy

#: Near-zero backoff so retry storms do not slow the suite.
FAST = RecoveryPolicy(
    max_retries=2, backoff_base=0.001, backoff_multiplier=1.0,
    backoff_cap=0.002,
)


def _corpus(seed=21, size=18, bits=40):
    """Moduli with planted shared primes so results are non-trivial."""
    rng = random.Random(seed)
    shared = [generate_prime(bits, rng) for _ in range(3)]
    moduli = []
    for index in range(size):
        if index % 5 == 0:
            moduli.append(rng.choice(shared) * generate_prime(bits, rng))
        else:
            moduli.append(
                generate_prime(bits, rng) * generate_prime(bits, rng)
            )
    return moduli


MODULI = _corpus()
BASELINE = batch_gcd(MODULI)

#: k=3 gives chunk size 1 under streaming (and shards=3 under alltoall),
#: so every engine runs 9 chunks with ids 0..8 — the plan arithmetic
#: below relies on it.
K = 3
N_CHUNKS = K * K

#: Engine labels the chaos matrix sweeps (clustered schedulers plus the
#: sharded all-to-all engine at the matching shard count).
ENGINES = ("streaming", "fanout", "alltoall")


def _make_engine(scheduler, plan, processes=None, recovery=FAST, **kwargs):
    if scheduler == "alltoall":
        return AllToAllBatchGcd(
            shards=K, processes=processes, fault_plan=plan,
            recovery=recovery, **kwargs,
        )
    return ClusteredBatchGcd(
        k=K, processes=processes, scheduler=scheduler, fault_plan=plan,
        recovery=recovery, **kwargs,
    )


def _run(scheduler, plan, processes=None, recovery=FAST, **kwargs):
    engine = _make_engine(
        scheduler, plan, processes=processes, recovery=recovery, **kwargs
    )
    result = engine.run(MODULI)
    assert result.divisors == BASELINE.divisors, (
        f"{scheduler} diverged under plan {plan}"
    )
    return engine.last_stats


class TestInProcessFaultMatrix:
    """Single-threaded runs: counter arithmetic is exact."""

    @pytest.mark.parametrize("scheduler", ENGINES)
    def test_crash_every_chunk_once(self, scheduler):
        plan = FaultPlan(seed=1, rules=(FaultRule(kind="crash", times=1),))
        stats = _run(scheduler, plan)
        assert stats.retries == N_CHUNKS
        assert stats.crashed_chunks == N_CHUNKS
        assert stats.inprocess_fallbacks == 0

    @pytest.mark.parametrize("scheduler", ENGINES)
    def test_corrupt_every_chunk_once(self, scheduler):
        plan = FaultPlan(seed=1, rules=(FaultRule(kind="corrupt", times=1),))
        stats = _run(scheduler, plan)
        assert stats.retries == N_CHUNKS
        assert stats.corrupt_chunks == N_CHUNKS

    @pytest.mark.parametrize("scheduler", ENGINES)
    def test_slow_chunks_complete_without_retry(self, scheduler):
        plan = FaultPlan(
            seed=1, rules=(FaultRule(kind="slow", seconds=0.005),)
        )
        stats = _run(scheduler, plan)
        assert stats.retries == 0 and stats.crashed_chunks == 0

    @pytest.mark.parametrize("scheduler", ENGINES)
    def test_seeded_mixed_plan_matches_schedule(self, scheduler):
        plan = FaultPlan(
            seed=9,
            rules=(
                FaultRule(kind="crash", rate=0.4, times=1),
                FaultRule(kind="corrupt", rate=0.3, times=1),
            ),
        )
        schedule = plan.schedule(range(N_CHUNKS))
        assert schedule, "seed must select at least one chunk"
        expected_retries = sum(len(kinds) for kinds in schedule.values())
        expected_crashes = sum(
            kinds.count("crash") for kinds in schedule.values()
        )
        stats = _run(scheduler, plan)
        assert stats.retries == expected_retries
        assert stats.crashed_chunks == expected_crashes

    @pytest.mark.parametrize("scheduler", ENGINES)
    def test_exhausted_retries_degrade_but_stay_correct(self, scheduler):
        plan = FaultPlan(
            seed=2, rules=(FaultRule(kind="crash", times=10, chunks=(0, 4)),)
        )
        stats = _run(scheduler, plan)
        assert stats.inprocess_fallbacks == 2
        assert stats.retries == 2 * FAST.max_retries

    def test_env_var_activates_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt:times=1,chunks=0")
        stats = _run("streaming", plan=None)
        assert stats.corrupt_chunks == 1 and stats.retries == 1

    def test_no_plan_means_no_recovery_activity(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        stats = _run("streaming", plan=None)
        assert (
            stats.retries, stats.pool_rebuilds, stats.chunk_timeouts,
            stats.crashed_chunks, stats.corrupt_chunks,
            stats.inprocess_fallbacks,
        ) == (0, 0, 0, 0, 0, 0)


class TestPooledFaultMatrix:
    """Real process pools: injected crashes kill actual workers."""

    def test_streaming_worker_death_rebuilds_pool(self):
        # window=1 keeps one chunk in flight, so attribution is exact
        plan = FaultPlan(
            seed=3, rules=(FaultRule(kind="crash", times=1, chunks=(2,)),)
        )
        stats = _run(
            "streaming", plan, processes=1, max_inflight=1,
        )
        assert stats.pool_rebuilds == 1
        assert stats.retries == 1

    def test_alltoall_worker_death_rebuilds_pool(self):
        plan = FaultPlan(
            seed=3, rules=(FaultRule(kind="crash", times=1, chunks=(2,)),)
        )
        stats = _run(
            "alltoall", plan, processes=1, max_inflight=1,
        )
        assert stats.pool_rebuilds == 1
        assert stats.retries == 1

    def test_fanout_worker_death_rebuilds_pool(self):
        plan = FaultPlan(
            seed=3, rules=(FaultRule(kind="crash", times=1, chunks=(0,)),)
        )
        stats = _run("fanout", plan, processes=2)
        # a broken pool cannot attribute blame: every in-flight chunk
        # retries, so the counters are lower bounds here
        assert stats.pool_rebuilds >= 1
        assert stats.retries >= 1

    def test_hung_worker_times_out_and_retries(self):
        plan = FaultPlan(
            seed=4,
            rules=(
                FaultRule(kind="timeout", seconds=1.5, times=1, chunks=(0,)),
            ),
        )
        policy = RecoveryPolicy(
            max_retries=2, chunk_timeout=0.3, backoff_base=0.001,
            backoff_cap=0.002,
        )
        stats = _run("streaming", plan, processes=2, recovery=policy)
        assert stats.chunk_timeouts >= 1
        assert stats.retries >= 1


class TestCheckpointResume:
    @pytest.mark.parametrize("scheduler", ENGINES)
    def test_faulty_checkpointed_rerun_is_byte_identical(
        self, scheduler, tmp_path
    ):
        plan = FaultPlan(seed=5, rules=(FaultRule(kind="crash", times=1),))
        first = _make_engine(
            scheduler, plan, checkpoint_dir=tmp_path,
        )
        r1 = first.run(MODULI)
        assert first.last_stats.checkpoint_written == N_CHUNKS
        second = _make_engine(scheduler, None, checkpoint_dir=tmp_path)
        r2 = second.run(MODULI)
        assert second.last_stats.checkpoint_loaded == N_CHUNKS
        assert second.last_stats.checkpoint_written == 0
        assert r1.divisors == r2.divisors == BASELINE.divisors

    def test_partial_checkpoint_finishes_remaining_passes(self, tmp_path):
        full = ClusteredBatchGcd(k=K, checkpoint_dir=tmp_path)
        reference = full.run(MODULI)
        # drop shards to simulate a run killed after three passes
        import json

        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        survivors = manifest["passes"][:3]
        for i, j in manifest["passes"][3:]:
            (tmp_path / f"pass-{i}-{j}.json").unlink()
        manifest["passes"] = survivors
        manifest_path.write_text(json.dumps(manifest))
        resumed = ClusteredBatchGcd(k=K, checkpoint_dir=tmp_path)
        result = resumed.run(MODULI)
        assert resumed.last_stats.checkpoint_loaded == 3
        assert resumed.last_stats.checkpoint_written == N_CHUNKS - 3
        assert result.divisors == reference.divisors


class TestKillAndResumeCli:
    """The end-to-end drill: SIGKILL mid-computation, resume, compare."""

    def _write_corpus(self, path):
        path.write_text(
            "\n".join(f"{n:x}" for n in MODULI) + "\n"
        )

    def _cli(self, *argv):
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("REPRO_FAULTS", None)
        return [sys.executable, "-m", "repro.batchgcd_cli", *argv], env

    def test_sigkill_mid_run_then_resume_matches_clean_run(self, tmp_path):
        corpus = tmp_path / "moduli.txt"
        self._write_corpus(corpus)
        clean_out = tmp_path / "clean.txt"
        cmd, env = self._cli(
            str(corpus), "--k", "6", "-o", str(clean_out)
        )
        subprocess.run(cmd, env=env, check=True, capture_output=True)

        # a slow plan stretches the run so the kill lands mid-computation
        ckpt = tmp_path / "ckpt"
        killed_out = tmp_path / "killed.txt"
        cmd, env = self._cli(
            str(corpus), "--k", "6", "-o", str(killed_out),
            "--checkpoint-dir", str(ckpt),
            "--fault-plan", "slow:seconds=0.2",
        )
        victim = subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if len(list(ckpt.glob("pass-*.json"))) >= 3:
                    break
                if victim.poll() is not None:
                    break
                time.sleep(0.05)
            shards_at_kill = len(list(ckpt.glob("pass-*.json")))
            if victim.poll() is None:
                victim.send_signal(signal.SIGKILL)
        finally:
            victim.wait(timeout=30)
        assert shards_at_kill >= 3, "run finished before the kill landed"
        assert not killed_out.exists(), "kill landed after completion"

        resumed_out = tmp_path / "resumed.txt"
        cmd, env = self._cli(
            str(corpus), "--k", "6", "-o", str(resumed_out),
            "--checkpoint-dir", str(ckpt),
        )
        done = subprocess.run(cmd, env=env, check=True, capture_output=True)
        assert b"passes restored" in done.stderr
        assert resumed_out.read_bytes() == clean_out.read_bytes()
