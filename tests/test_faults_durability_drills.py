"""Crash drills: the concrete data loss each DUR rule prevents.

One drill per rule.  Each drill runs the *undisciplined* protocol in a
child process that SIGKILLs itself mid-flight and asserts the loss on
disk, then runs the disciplined counterpart and asserts survival.  The
drills are deterministic: the kill lands at a fixed point in the
protocol, not on a timer.

SIGKILL surfaces user-space buffer loss (DUR001/DUR002/DUR003/DUR005)
but not page-cache or directory-entry volatility — the kernel keeps
those across a process kill.  DUR004's hazard (a completed rename whose
directory entry evaporates on power loss) is therefore drilled against
an explicit model of a volatile directory rather than a real kill.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.faults.fsio import atomic_write_text, fsync_dir
from repro.faults.journal import MutationJournal

REPO_ROOT = Path(__file__).resolve().parent.parent

PRELUDE = """
import os
import signal
import sys
"""


def run_until_killed(tmp_path, body):
    """Run a drill script that ends in a self-SIGKILL; assert it died rudely."""
    script = tmp_path / "drill.py"
    script.write_text(PRELUDE + textwrap.dedent(body))
    result = subprocess.run(
        [sys.executable, str(script), str(tmp_path)],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert result.returncode == -signal.SIGKILL, result.stderr
    return result


class TestDur001Drill:
    """An unsynced rename source commits whatever the buffer held: nothing."""

    def test_buffered_write_then_rename_publishes_an_empty_file(self, tmp_path):
        run_until_killed(
            tmp_path,
            """
            root = sys.argv[1]
            tmp = os.path.join(root, "data.tmp")
            handle = open(tmp, "w", encoding="utf-8")
            handle.write("precious payload")  # sits in the user-space buffer
            os.replace(tmp, os.path.join(root, "data.json"))
            os.kill(os.getpid(), signal.SIGKILL)
            """,
        )
        published = tmp_path / "data.json"
        assert published.exists()  # the rename committed...
        assert published.read_text() == ""  # ...an empty file

    def test_fsync_before_rename_publishes_intact(self, tmp_path):
        run_until_killed(
            tmp_path,
            """
            sys.path.insert(0, os.environ["PYTHONPATH"])
            from repro.faults.fsio import atomic_write_text

            root = sys.argv[1]
            atomic_write_text(os.path.join(root, "data.json"), "precious payload")
            os.kill(os.getpid(), signal.SIGKILL)
            """,
        )
        assert (tmp_path / "data.json").read_text() == "precious payload"


class TestDur002Drill:
    """An in-place commit-point write destroys the old state with the new."""

    def test_truncating_the_manifest_in_place_loses_both_states(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"count": 3}')
        run_until_killed(
            tmp_path,
            """
            root = sys.argv[1]
            handle = open(os.path.join(root, "manifest.json"), "w")
            handle.write('{"count":')  # killed mid-write, nothing flushed
            os.kill(os.getpid(), signal.SIGKILL)
            """,
        )
        # The open-for-write truncated the old manifest; the new bytes
        # died in the buffer.  Neither state survives.
        assert (tmp_path / "manifest.json").read_text() == ""

    def test_temp_plus_rename_keeps_the_old_state(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"count": 3}')
        run_until_killed(
            tmp_path,
            """
            root = sys.argv[1]
            handle = open(os.path.join(root, "manifest.json.tmp"), "w")
            handle.write('{"count":')  # killed before the rename
            os.kill(os.getpid(), signal.SIGKILL)
            """,
        )
        assert (tmp_path / "manifest.json").read_text() == '{"count": 3}'


class TestDur003Drill:
    """Mutating before journaling loses the mutation with no replay record."""

    def test_mutation_before_append_is_unrecoverable(self, tmp_path):
        run_until_killed(
            tmp_path,
            """
            sys.path.insert(0, os.environ["PYTHONPATH"])
            from repro.faults.fsio import atomic_write_text
            from repro.faults.journal import MutationJournal

            root = sys.argv[1]
            journal = MutationJournal(os.path.join(root, "journal.jsonl"))
            # Wrong order: persist the (incomplete) mutation first...
            atomic_write_text(os.path.join(root, "state.json"), '["item-1"')
            os.kill(os.getpid(), signal.SIGKILL)
            # ...and never reach the journal append.
            journal.append({"insert": "item-1"})
            """,
        )
        journal = MutationJournal(tmp_path / "journal.jsonl")
        assert journal.pending() == []  # nothing to replay
        with pytest.raises(ValueError):
            json.loads((tmp_path / "state.json").read_text())

    def test_journal_first_replays_the_lost_mutation(self, tmp_path):
        run_until_killed(
            tmp_path,
            """
            sys.path.insert(0, os.environ["PYTHONPATH"])
            from repro.faults.journal import MutationJournal

            root = sys.argv[1]
            journal = MutationJournal(os.path.join(root, "journal.jsonl"))
            journal.append({"insert": "item-1"})
            os.kill(os.getpid(), signal.SIGKILL)
            # The state write never happens — but the intent is durable.
            """,
        )
        journal = MutationJournal(tmp_path / "journal.jsonl")
        (record,) = journal.pending()
        assert record["insert"] == "item-1"
        # Recovery replays the record into the store.
        atomic_write_text(tmp_path / "state.json", json.dumps([record["insert"]]))
        assert json.loads((tmp_path / "state.json").read_text()) == ["item-1"]


class _VolatileDirectory:
    """A power-loss model for directory entries.

    A completed rename updates the directory's in-memory entry table
    immediately (SIGKILL-safe), but the on-disk table only catches up on
    ``fsync(dirfd)``.  ``power_loss()`` reverts to the last fsynced
    table — exactly the hazard DUR004 warns about, which no process kill
    can surface.
    """

    def __init__(self):
        self.entries = {}
        self._durable = {}

    def rename(self, name, inode):
        self.entries[name] = inode

    def fsync(self):
        self._durable = dict(self.entries)

    def power_loss(self):
        self.entries = dict(self._durable)


class TestDur004Drill:
    def test_unsynced_rename_vanishes_on_power_loss(self):
        directory = _VolatileDirectory()
        directory.rename("manifest.json", inode=42)
        assert directory.entries["manifest.json"] == 42  # visible post-kill
        directory.power_loss()
        assert "manifest.json" not in directory.entries  # gone post-outage

    def test_directory_fsync_pins_the_rename(self):
        directory = _VolatileDirectory()
        directory.rename("manifest.json", inode=42)
        directory.fsync()
        directory.power_loss()
        assert directory.entries["manifest.json"] == 42

    def test_real_fsync_dir_accepts_a_directory(self, tmp_path):
        """The primitive the fix calls must work on a real directory."""
        (tmp_path / "manifest.json").write_text("{}")
        fsync_dir(tmp_path)


class TestDur005Drill:
    """A torn tail is the *expected* post-kill state; readers must survive it."""

    def drill_torn_journal(self, tmp_path):
        run_until_killed(
            tmp_path,
            """
            sys.path.insert(0, os.environ["PYTHONPATH"])
            from repro.faults.journal import MutationJournal

            root = sys.argv[1]
            journal = MutationJournal(os.path.join(root, "journal.jsonl"))
            for index in range(3):
                journal.append({"insert": index})
            # A kill mid-append leaves a torn final line.
            with open(journal.path, "a", encoding="utf-8") as handle:
                handle.write('{"insert": 3, "_se')
                handle.flush()
            os.kill(os.getpid(), signal.SIGKILL)
            """,
        )
        return tmp_path / "journal.jsonl"

    def test_unguarded_reader_throws_away_every_record(self, tmp_path):
        path = self.drill_torn_journal(tmp_path)
        with pytest.raises(ValueError):
            [json.loads(line) for line in path.read_text().splitlines()]

    def test_guarded_reader_keeps_everything_before_the_tear(self, tmp_path):
        path = self.drill_torn_journal(tmp_path)
        journal = MutationJournal(path)
        assert [record["insert"] for record in journal.pending()] == [0, 1, 2]
