"""Unit tests for the durable filesystem primitives (`repro.faults.fsio`)."""

import os

import pytest

from repro.faults.fsio import atomic_write_text, fsync_dir, fsync_file


class TestFsyncFile:
    def test_flushes_and_fsyncs_the_descriptor(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        target = tmp_path / "out.txt"
        with open(target, "w", encoding="utf-8") as handle:
            handle.write("payload")
            fsync_file(handle)
            # The flush happened before the fsync: the bytes are already
            # visible to an independent reader while the handle is open.
            assert target.read_text() == "payload"
            assert synced == [handle.fileno()]


class TestFsyncDir:
    def test_syncs_a_directory_descriptor(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        fsync_dir(tmp_path)
        assert len(synced) == 1

    def test_rejects_missing_directories(self, tmp_path):
        with pytest.raises(OSError):
            fsync_dir(tmp_path / "nope")


class TestAtomicWriteText:
    def test_writes_content_with_no_temp_residue(self, tmp_path):
        target = tmp_path / "state" / "manifest.json"
        atomic_write_text(target, '{"count": 1}')
        assert target.read_text() == '{"count": 1}'
        assert list(target.parent.iterdir()) == [target]

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "manifest.json"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_fsyncs_before_the_rename(self, tmp_path, monkeypatch):
        """The ordering is the whole point: content durable, then commit."""
        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (events.append("fsync"), real_fsync(fd))
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda src, dst: (events.append("replace"), real_replace(src, dst)),
        )
        atomic_write_text(tmp_path / "manifest.json", "payload")
        # File fsync, atomic rename, directory fsync — in that order.
        assert events == ["fsync", "replace", "fsync"]

    def test_temp_file_lives_in_the_target_directory(self, tmp_path, monkeypatch):
        """Same-directory temp means the rename can never cross devices."""
        seen = []
        real_replace = os.replace
        monkeypatch.setattr(
            os,
            "replace",
            lambda src, dst: (seen.append((src, dst)), real_replace(src, dst)),
        )
        target = tmp_path / "manifest.json"
        atomic_write_text(target, "payload")
        ((src, dst),) = [seen[0]]
        assert os.path.dirname(os.fspath(src)) == os.fspath(tmp_path)
        assert os.fspath(dst) == os.fspath(target)
