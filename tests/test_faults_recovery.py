"""Unit tests for the fault seam: plans, recovery driver, checkpoints.

The chaos matrix in ``test_faults_chaos.py`` drives the whole clustered
engine; this file pins down the pieces in isolation — plan determinism
and parsing, every ``ResilientExecutor`` recovery path against a fake
pool (real :class:`~concurrent.futures.Future` objects, no processes),
and the checkpoint store's identity/torn-shard handling.  It also holds
the regression test for the streaming scheduler's old future leak: an
exception escaping the drive loop must cancel and drain every in-flight
future rather than orphan them.
"""

import json
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.faults import (
    CheckpointStore,
    ChunkResultError,
    FaultPlan,
    FaultRule,
    InjectedCrash,
    RecoveryPolicy,
    ResilientExecutor,
    corpus_digest,
    corrupt_chunk_results,
    load_fault_plan,
    resolve_fault_plan,
    trigger_fault,
)


class TestFaultPlan:
    def test_rule_for_is_deterministic(self):
        plan = FaultPlan(seed=7, rules=(FaultRule(kind="crash", rate=0.5),))
        first = [plan.rule_for(c, 0) for c in range(50)]
        second = [plan.rule_for(c, 0) for c in range(50)]
        assert first == second
        assert any(first) and not all(first)  # rate=0.5 selects a strict subset

    def test_rules_consume_in_order(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="crash", times=2),
                FaultRule(kind="corrupt", times=1),
            )
        )
        kinds = [plan.rule_for(0, attempt) for attempt in range(4)]
        assert [r.kind if r else None for r in kinds] == [
            "crash", "crash", "corrupt", None,
        ]

    def test_explicit_chunks_override_rate(self):
        plan = FaultPlan(rules=(FaultRule(kind="slow", chunks=(1, 3)),))
        assert plan.rule_for(1, 0) is not None
        assert plan.rule_for(2, 0) is None

    def test_schedule_stops_after_slow(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="crash", times=1, chunks=(0,)),
                FaultRule(kind="slow", times=3, chunks=(0,)),
            )
        )
        # the slow attempt completes, so later scheduled faults never run
        assert plan.schedule(range(2)) == {0: ["crash", "slow"]}

    def test_parse_spec_grammar(self):
        plan = FaultPlan.parse("seed=7;crash:rate=1.0,times=2;slow:seconds=0.01,chunks=0|3")
        assert plan.seed == 7
        assert plan.rules[0] == FaultRule(kind="crash", rate=1.0, times=2)
        assert plan.rules[1].chunks == (0, 3)
        assert plan.rules[1].seconds == 0.01

    def test_parse_json_and_roundtrip(self):
        plan = FaultPlan(seed=3, rules=(FaultRule(kind="timeout", seconds=0.5),))
        assert FaultPlan.parse(json.dumps(plan.to_dict())) == plan

    def test_parse_rejects_unknown_kind_and_options(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("explode:times=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash:warp=9")

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = FaultPlan(seed=1, rules=(FaultRule(kind="corrupt"),))
        path.write_text(json.dumps(plan.to_dict()))
        assert load_fault_plan(str(path)) == plan

    def test_resolve_env_and_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert resolve_fault_plan(None) is None
        monkeypatch.setenv("REPRO_FAULTS", "crash:times=1")
        resolved = resolve_fault_plan(None)
        assert resolved is not None and resolved.rules[0].kind == "crash"
        explicit = FaultPlan(rules=(FaultRule(kind="slow"),))
        assert resolve_fault_plan(explicit) is explicit


class TestTriggerFault:
    def test_no_plan_is_inert(self):
        assert trigger_fault(None, 0, 0, pooled=True) is None

    def test_inprocess_crash_raises(self):
        plan = FaultPlan(rules=(FaultRule(kind="crash"),))
        with pytest.raises(InjectedCrash):
            trigger_fault(plan, 0, 0, pooled=False)

    def test_corrupt_returned_for_caller(self):
        plan = FaultPlan(rules=(FaultRule(kind="corrupt"),))
        rule = trigger_fault(plan, 0, 0, pooled=False)
        assert rule is not None and rule.kind == "corrupt"
        assert corrupt_chunk_results([1, 2, 3]) == [1, 2]


def _fast_policy(**kwargs):
    defaults = dict(
        max_retries=2, backoff_base=0.001, backoff_multiplier=1.0,
        backoff_cap=0.002,
    )
    defaults.update(kwargs)
    return RecoveryPolicy(**defaults)


class _FakePool:
    """An inline executor returning real, already-resolved futures.

    ``script`` maps ``(chunk_id, attempt)`` to a behaviour: ``"ok"``
    (default), ``"raise"``, ``"broken"`` (BrokenProcessPool, like a dead
    worker), or ``"hang"`` (a future that never completes).
    """

    def __init__(self, script=None):
        self.script = script or {}
        self.submitted = []
        self.shutdown_calls = []
        self.hung: list[Future] = []

    def submit(self, fn, chunk_id, attempt, payload):
        self.submitted.append((chunk_id, attempt))
        behaviour = self.script.get((chunk_id, attempt), "ok")
        future = Future()
        if behaviour == "hang":
            self.hung.append(future)
            return future
        future.set_running_or_notify_cancel()
        if behaviour == "raise":
            future.set_exception(RuntimeError(f"boom {chunk_id}/{attempt}"))
        elif behaviour == "broken":
            future.set_exception(BrokenProcessPool("worker died"))
        else:
            future.set_result(fn(chunk_id, attempt, payload))
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_calls.append((wait, cancel_futures))


def _task(chunk_id, attempt, payload):
    return ("done", chunk_id, attempt, payload)


class TestResilientExecutorLocal:
    def test_clean_run_consumes_everything_once(self):
        consumed = []
        stats = ResilientExecutor(
            payloads=[(0, "a"), (1, "b")],
            policy=_fast_policy(),
            fallback=lambda cid, p: ("fallback", cid),
            local_task=_task,
        ).run(lambda cid, result, seconds: consumed.append((cid, result)))
        assert [c[0] for c in consumed] == [0, 1]
        assert stats.retries == 0 and stats.inprocess_fallbacks == 0

    def test_retry_then_success(self):
        attempts = []

        def flaky(chunk_id, attempt, payload):
            attempts.append(attempt)
            if attempt == 0:
                raise RuntimeError("first try dies")
            return "ok"

        consumed = []
        stats = ResilientExecutor(
            payloads=[(0, None)],
            policy=_fast_policy(),
            fallback=lambda cid, p: "fallback",
            local_task=flaky,
        ).run(lambda cid, result, seconds: consumed.append(result))
        assert consumed == ["ok"]
        assert attempts == [0, 1]
        assert stats.retries == 1 and stats.crashed_chunks == 1

    def test_exhausted_retries_fall_back(self):
        def always_dies(chunk_id, attempt, payload):
            raise RuntimeError("never works")

        consumed = []
        stats = ResilientExecutor(
            payloads=[(0, "payload")],
            policy=_fast_policy(max_retries=1),
            fallback=lambda cid, p: ("rescued", p),
            local_task=always_dies,
        ).run(lambda cid, result, seconds: consumed.append(result))
        assert consumed == [("rescued", "payload")]
        assert stats.retries == 1 and stats.inprocess_fallbacks == 1

    def test_verify_rejection_counts_as_corrupt(self):
        calls = []

        def verify(chunk_id, payload, result):
            calls.append(result)
            if len(calls) == 1:
                raise ChunkResultError("truncated")

        stats = ResilientExecutor(
            payloads=[(0, None)],
            policy=_fast_policy(),
            fallback=lambda cid, p: "fallback",
            local_task=_task,
            verify=verify,
        ).run(lambda cid, result, seconds: None)
        assert stats.corrupt_chunks == 1 and stats.retries == 1


class TestResilientExecutorPooled:
    def test_clean_pooled_run(self):
        pool = _FakePool()
        consumed = []
        stats = ResilientExecutor(
            payloads=[(c, f"p{c}") for c in range(5)],
            policy=_fast_policy(),
            fallback=lambda cid, p: ("fallback", cid),
            pool_factory=lambda: pool,
            pool_task=_task,
            window=2,
        ).run(lambda cid, result, seconds: consumed.append(cid))
        assert sorted(consumed) == list(range(5))
        assert stats.retries == 0 and stats.pool_rebuilds == 0
        # the drain always shuts the pool down, waiting on stragglers
        assert pool.shutdown_calls[-1] == (True, True)

    def test_worker_exception_retries_on_fresh_submission(self):
        pool = _FakePool(script={(1, 0): "raise"})
        consumed = []
        stats = ResilientExecutor(
            payloads=[(0, None), (1, None)],
            policy=_fast_policy(),
            fallback=lambda cid, p: ("fallback", cid),
            pool_factory=lambda: pool,
            pool_task=_task,
            window=2,
        ).run(lambda cid, result, seconds: consumed.append(cid))
        assert sorted(consumed) == [0, 1]
        assert stats.retries == 1 and stats.crashed_chunks == 1
        assert (1, 1) in pool.submitted  # chunk 1 re-submitted as attempt 1

    def test_broken_pool_rebuilds_and_requeues(self):
        pools = []

        def factory():
            script = {(0, 0): "broken"} if not pools else {}
            pools.append(_FakePool(script=script))
            return pools[-1]

        consumed = []
        stats = ResilientExecutor(
            payloads=[(0, None), (1, None)],
            policy=_fast_policy(),
            fallback=lambda cid, p: ("fallback", cid),
            pool_factory=factory,
            pool_task=_task,
            window=1,
        ).run(lambda cid, result, seconds: consumed.append(cid))
        assert sorted(consumed) == [0, 1]
        assert stats.pool_rebuilds == 1 and len(pools) == 2
        # the broken pool was torn down before the replacement was built
        assert pools[0].shutdown_calls[0] == (False, True)

    def test_pool_abandoned_after_max_rebuilds(self):
        pools = []

        def factory():
            pools.append(_FakePool(script={(c, a): "broken" for c in range(2) for a in range(4)}))
            return pools[-1]

        consumed = []
        stats = ResilientExecutor(
            payloads=[(0, None), (1, None)],
            policy=_fast_policy(max_retries=3, max_pool_rebuilds=1),
            fallback=lambda cid, p: ("rescued", cid),
            pool_factory=factory,
            pool_task=_task,
            window=1,
        ).run(lambda cid, result, seconds: consumed.append(result))
        # after the rebuild budget, remaining chunks degrade in-process
        assert sorted(consumed) == [("rescued", 0), ("rescued", 1)]
        assert stats.pool_rebuilds == 2  # initial break + the failed rebuild
        assert stats.inprocess_fallbacks == 2
        assert len(pools) == 2

    def test_hung_chunk_times_out_and_retries(self):
        pool = _FakePool(script={(0, 0): "hang"})
        consumed = []
        stats = ResilientExecutor(
            payloads=[(0, None)],
            policy=_fast_policy(chunk_timeout=0.05),
            fallback=lambda cid, p: ("fallback", cid),
            pool_factory=lambda: pool,
            pool_task=_task,
            window=1,
        ).run(lambda cid, result, seconds: consumed.append(cid))
        assert consumed == [0]
        assert stats.chunk_timeouts == 1 and stats.retries == 1
        assert (0, 1) in pool.submitted

    def test_late_result_of_abandoned_attempt_is_discarded(self):
        pool = _FakePool(script={(0, 0): "hang"})
        consumed = []
        ResilientExecutor(
            payloads=[(0, None)],
            policy=_fast_policy(chunk_timeout=0.05),
            fallback=lambda cid, p: ("fallback", cid),
            pool_factory=lambda: pool,
            pool_task=_task,
            window=1,
        ).run(lambda cid, result, seconds: consumed.append(result))
        # the hung attempt "completes" after abandonment; nobody consumes it
        for future in pool.hung:
            if not future.cancelled():
                future.set_result("late")
        assert len(consumed) == 1 and consumed[0] != "late"

    def test_exception_in_consume_drains_inflight_futures(self):
        """Regression: the old streaming loop leaked pending futures when
        result-merging raised; the drive loop must cancel and shut down."""
        pool = _FakePool(script={(1, 0): "hang", (2, 0): "hang"})

        def consume(cid, result, seconds):
            raise RuntimeError("merge explodes")

        executor = ResilientExecutor(
            payloads=[(0, None), (1, None), (2, None)],
            policy=_fast_policy(),
            fallback=lambda cid, p: ("fallback", cid),
            pool_factory=lambda: pool,
            pool_task=_task,
            window=3,
        )
        with pytest.raises(RuntimeError, match="merge explodes"):
            executor.run(consume)
        # every in-flight future was cancelled, and the pool was shut down
        # with cancel_futures so nothing stays queued behind the failure
        assert all(future.cancelled() for future in pool.hung)
        assert pool.shutdown_calls[-1] == (True, True)


class TestCheckpointStore:
    def _store(self, tmp_path, digest="d1", **kwargs):
        defaults = dict(digest=digest, k=4, scheduler="streaming", backend="python")
        defaults.update(kwargs)
        return CheckpointStore(tmp_path, **defaults)

    def test_roundtrip(self, tmp_path):
        store = self._store(tmp_path)
        store.record({(0, 0): [(2, 35)], (0, 1): []})
        restored = self._store(tmp_path).load()
        assert restored == {(0, 0): [(2, 35)], (0, 1): []}

    def test_incremental_records_accumulate(self, tmp_path):
        store = self._store(tmp_path)
        store.record({(0, 0): [(0, 3)]})
        store.record({(1, 1): [(1, 5)]})
        assert set(self._store(tmp_path).load()) == {(0, 0), (1, 1)}

    def test_identity_mismatch_is_ignored(self, tmp_path):
        self._store(tmp_path).record({(0, 0): [(0, 3)]})
        assert self._store(tmp_path, digest="other").load() == {}
        assert self._store(tmp_path, k=8).load() == {}
        assert self._store(tmp_path, scheduler="fanout").load() == {}

    def test_torn_shard_is_recomputed(self, tmp_path):
        store = self._store(tmp_path)
        store.record({(0, 0): [(0, 3)], (1, 0): [(1, 7)]})
        (tmp_path / "pass-1-0.json").write_text("{ torn")
        assert set(self._store(tmp_path).load()) == {(0, 0)}

    def test_missing_directory_loads_empty(self, tmp_path):
        assert self._store(tmp_path / "never-written").load() == {}

    def test_corpus_digest_is_order_sensitive(self):
        assert corpus_digest([15, 21]) != corpus_digest([21, 15])
        assert corpus_digest([15, 21]) == corpus_digest([15, 21])
