"""Tests for bit-error and key-substitution artifact detection."""

import random
from datetime import date


from repro.core.batchgcd import batch_gcd
from repro.crypto.certs import DistinguishedName, self_signed_certificate, substitute_public_key
from repro.crypto.primes import generate_prime
from repro.crypto.rsa import generate_rsa_keypair
from repro.fingerprint.anomalies import (
    detect_bit_errors,
    detect_key_substitution,
    is_well_formed_modulus,
)
from repro.scans.records import CertificateStore


class TestWellFormedModulus:
    def test_well_formed(self, rng):
        p = generate_prime(48, rng)
        q = generate_prime(48, rng)
        assert is_well_formed_modulus(p * q, p, q)

    def test_composite_factor(self, rng):
        p = generate_prime(48, rng)
        assert not is_well_formed_modulus(p * 12, 12, p)

    def test_lopsided_primes(self, rng):
        p = generate_prime(16, rng)
        q = generate_prime(48, rng)
        assert not is_well_formed_modulus(p * q, p, q)


class TestDetectBitErrors:
    def build_corpus(self, rng, corrupt=True):
        # Healthy corpus plus corrupted one-bit-flip copies, plus a pair of
        # genuinely weak keys so the detector must discriminate.  A single
        # corrupted modulus shares no factor with well-formed semiprimes;
        # corruption only surfaces in batch GCD when *several* corrupted
        # records share small factors with each other (flipping the low bit
        # of an odd modulus makes it even), exactly as in the paper's corpus.
        pool = [generate_prime(48, rng) for _ in range(8)]
        healthy = [pool[0] * pool[1], pool[2] * pool[3]]
        weak = [pool[4] * pool[5], pool[4] * pool[6]]
        corpus = healthy + weak
        corrupted = None
        if corrupt:
            corrupted = [healthy[0] ^ 1, healthy[1] ^ 1]
            corpus = corpus + corrupted
        return corpus, corrupted, weak

    def test_bit_errors_detected_and_linked(self, rng):
        corpus, corrupted, _weak = self.build_corpus(rng)
        result = batch_gcd(corpus)
        findings = detect_bit_errors(result, set(corpus))
        bit_moduli = {f.modulus for f in findings}
        assert set(corrupted) <= bit_moduli
        for finding in findings:
            if finding.modulus in corrupted:
                assert finding.nearest_valid == finding.modulus ^ 1

    def test_weak_keys_not_misclassified(self, rng):
        corpus, _corrupted, weak = self.build_corpus(rng)
        result = batch_gcd(corpus)
        findings = detect_bit_errors(result, set(corpus))
        assert not ({f.modulus for f in findings} & set(weak))

    def test_clean_corpus_no_findings(self, rng):
        corpus, _c, _w = self.build_corpus(rng, corrupt=False)
        result = batch_gcd(corpus)
        assert detect_bit_errors(result, set(corpus)) == []


class TestDetectKeySubstitution:
    def make_device_cert(self, seed, keypair=None):
        kp = keypair or generate_rsa_keypair(96, random.Random(seed))
        return self_signed_certificate(
            subject=DistinguishedName(CN=f"10.0.0.{seed}"),
            keypair=kp,
            serial=seed,
            not_before=date(2012, 1, 1),
            not_after=date(2022, 1, 1),
        ), kp

    def test_substituted_fleet_detected(self):
        store = CertificateStore()
        mitm = generate_rsa_keypair(96, random.Random(1000))
        for seed in range(8):
            cert, _ = self.make_device_cert(seed)
            store.intern(substitute_public_key(cert, mitm.public), weight=1)
        findings = detect_key_substitution(store, min_certificates=5)
        assert len(findings) == 1
        assert findings[0].modulus == mitm.public.n
        assert findings[0].certificate_count == 8
        assert findings[0].distinct_subjects == 8

    def test_shared_default_certificate_not_flagged(self):
        # Many hosts serving the SAME certificate (one subject) is a shared
        # default key, not a substitution.
        store = CertificateStore()
        cert, _ = self.make_device_cert(1)
        store.intern(cert, weight=1)
        findings = detect_key_substitution(store, min_certificates=1)
        assert findings == []

    def test_valid_shared_key_distinct_certs_not_flagged(self):
        # Distinct certificates, same key, but all properly self-signed
        # (e.g. the Siemens/IBM fixed-modulus overlap): signatures verify,
        # so this is not a substitution.
        store = CertificateStore()
        kp = generate_rsa_keypair(96, random.Random(2000))
        for seed in range(8):
            cert, _ = self.make_device_cert(seed, keypair=kp)
            store.intern(cert, weight=1)
        findings = detect_key_substitution(store, min_certificates=5)
        assert findings == []

    def test_small_fleet_below_threshold(self):
        store = CertificateStore()
        mitm = generate_rsa_keypair(96, random.Random(1000))
        for seed in range(3):
            cert, _ = self.make_device_cert(seed)
            store.intern(substitute_public_key(cert, mitm.public), weight=1)
        assert detect_key_substitution(store, min_certificates=5) == []
