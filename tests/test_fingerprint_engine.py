"""Integration tests for the fingerprint engine over the tiny study."""


from repro.devices.vendors import VENDORS


class TestEngineOverTinyStudy:
    def test_no_false_positives_against_ground_truth(self, tiny_study):
        # Every cleanly factored modulus must be a ground-truth weak key.
        assert set(tiny_study.fingerprints.factored_clean) <= tiny_study.weak_moduli_truth

    def test_high_recall_on_scanned_weak_keys(self, tiny_study):
        # Weak keys that were actually scanned and whose boot state collided
        # should factor; overall recall on scanned truth should be high.
        scanned = {
            e.certificate.public_key.n for e in tiny_study.store.entries()
        }
        scanned_truth = tiny_study.weak_moduli_truth & scanned
        found = scanned_truth & set(tiny_study.fingerprints.factored_clean)
        assert len(found) >= 0.75 * len(scanned_truth)

    def test_rimon_substitution_found(self, tiny_study):
        subs = tiny_study.fingerprints.substitutions
        assert len(subs) == 1
        # The interceptor's modulus is never counted as a weak key.
        assert subs[0].modulus not in tiny_study.fingerprints.factored_clean

    def test_bit_errors_triaged_out(self, tiny_study):
        bit_moduli = {f.modulus for f in tiny_study.fingerprints.bit_errors}
        assert bit_moduli
        assert not (bit_moduli & set(tiny_study.fingerprints.factored_clean))

    def test_ibm_clique_degenerate_and_labelled(self, tiny_study):
        degenerate = tiny_study.fingerprints.degenerate_cliques
        assert len(degenerate) == 1
        clique = degenerate[0]
        assert clique.label == "IBM"
        assert len(clique.primes) <= 9

    def test_siemens_ibm_overlap_observed(self, tiny_study):
        overlaps = tiny_study.fingerprints.overlaps
        assert frozenset({"IBM", "Siemens"}) in overlaps

    def test_dell_xerox_overlap_observed(self, tiny_study):
        overlaps = tiny_study.fingerprints.overlaps
        assert frozenset({"Dell", "Xerox"}) in overlaps

    def test_extrapolation_labels_ip_only_fritzboxes(self, tiny_study):
        # Some Fritz!Box certs carry only an IP subject; they must have been
        # attributed via shared primes.
        assert tiny_study.fingerprints.rule_counts["shared-primes"] > 0
        fritz_certs = [
            cert_id
            for cert_id, vendor in tiny_study.fingerprints.vendor_by_cert.items()
            if vendor == "Fritz!Box"
        ]
        ip_only = [
            cert_id
            for cert_id in fritz_certs
            if tiny_study.store[cert_id].certificate.subject.CN.count(".") == 3
            and tiny_study.store[cert_id]
            .certificate.subject.CN.replace(".", "")
            .isdigit()
        ]
        assert ip_only, "no IP-only Fritz!Box certificates were attributed"

    def test_openssl_verdicts_match_registry(self, tiny_study):
        for verdict in tiny_study.fingerprints.openssl_verdicts:
            expected = VENDORS.get(verdict.vendor)
            if expected is None or expected.uses_openssl is None:
                continue
            if verdict.verdict == "inconclusive":
                continue
            measured_openssl = verdict.verdict == "openssl"
            assert measured_openssl == expected.uses_openssl, verdict.vendor

    def test_subject_rules_label_most_certificates(self, tiny_study):
        labelled = len(tiny_study.fingerprints.vendor_by_cert)
        device_like = sum(
            1
            for e in tiny_study.store.entries()
            if e.certificate.subject.CN != ""
        )
        assert labelled > 0
        assert labelled <= device_like
