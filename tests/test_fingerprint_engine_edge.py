"""Edge-case tests for the fingerprint engine (empty and tiny inputs)."""

from datetime import date

from repro.core.batchgcd import batch_gcd
from repro.core.results import BatchGcdResult
from repro.crypto.certs import DistinguishedName, self_signed_certificate
from repro.crypto.primes import generate_prime
from repro.crypto.rsa import keypair_from_primes
from repro.fingerprint.engine import fingerprint_study
from repro.scans.records import CertificateStore


class TestEmptyInputs:
    def test_empty_store_and_corpus(self):
        report = fingerprint_study(
            CertificateStore(), BatchGcdResult([], []), check_safe_primes=False
        )
        assert report.vendor_by_cert == {}
        assert report.factored_clean == {}
        assert report.openssl_verdicts == []
        assert report.bit_errors == []
        assert report.substitutions == []

    def test_store_without_vulnerable_keys(self, rng, small_openssl_table):
        store = CertificateStore()
        moduli = []
        for seed in range(4):
            p = generate_prime(48, rng)
            q = generate_prime(48, rng)
            keypair = keypair_from_primes(p, q)
            cert = self_signed_certificate(
                subject=DistinguishedName(O="ZyXEL", CN=f"d{seed}"),
                keypair=keypair,
                serial=seed,
                not_before=date(2012, 1, 1),
                not_after=date(2022, 1, 1),
            )
            store.intern(cert, weight=1)
            moduli.append(keypair.public.n)
        report = fingerprint_study(
            store, batch_gcd(moduli), openssl_table=small_openssl_table,
            check_safe_primes=False,
        )
        # Subjects are labelled even when nothing factors...
        assert set(report.vendor_by_cert.values()) == {"ZyXEL"}
        # ...but the OpenSSL fingerprint has nothing to say.
        assert report.openssl_verdicts == []
        assert report.factored_clean == {}


class TestSingleSharedPair:
    def test_minimal_vulnerable_corpus(self, rng, small_openssl_table):
        shared = generate_prime(48, rng)
        store = CertificateStore()
        moduli = []
        for seed in range(2):
            q = generate_prime(48, rng)
            keypair = keypair_from_primes(shared, q)
            cert = self_signed_certificate(
                subject=DistinguishedName(O="Innominate", CN=f"m{seed}"),
                keypair=keypair,
                serial=seed,
                not_before=date(2012, 1, 1),
                not_after=date(2022, 1, 1),
            )
            store.intern(cert, weight=1)
            moduli.append(keypair.public.n)
        report = fingerprint_study(
            store, batch_gcd(moduli), openssl_table=small_openssl_table,
            check_safe_primes=False,
        )
        assert set(report.factored_clean) == set(moduli)
        assert all(
            report.vendor_by_modulus[n] == "Innominate" for n in moduli
        )
        # One clique of three primes, not degenerate.
        assert len(report.cliques) == 1
        assert not report.degenerate_cliques
