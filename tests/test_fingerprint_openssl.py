"""Tests for the OpenSSL prime fingerprint (Table 5 machinery)."""

import random

from repro.core.results import FactoredModulus
from repro.crypto.primes import generate_prime, openssl_style_prime
from repro.fingerprint.openssl import classify_vendors, openssl_prime_fraction


def corpus(small_openssl_table, vendor_styles, seed=1, keys_per_vendor=6):
    """Build (factored, labels) with per-vendor generation styles."""
    rng = random.Random(seed)
    factored = {}
    labels = {}
    for vendor, openssl in vendor_styles.items():
        for _ in range(keys_per_vendor):
            if openssl:
                p = openssl_style_prime(48, rng, small_openssl_table)
                q = openssl_style_prime(48, rng, small_openssl_table)
            else:
                p = generate_prime(48, rng)
                q = generate_prime(48, rng)
            n = p * q
            factored[n] = FactoredModulus(n, min(p, q), max(p, q))
            labels[n] = vendor
    return factored, labels


class TestOpensslPrimeFraction:
    def test_empty(self):
        assert openssl_prime_fraction([]) == 0.0

    def test_all_satisfying(self, rng, small_openssl_table):
        primes = [openssl_style_prime(48, rng, small_openssl_table) for _ in range(5)]
        assert openssl_prime_fraction(primes, small_openssl_table) == 1.0


class TestClassifyVendors:
    def test_separates_openssl_from_not(self, small_openssl_table):
        factored, labels = corpus(
            small_openssl_table, {"McAfee": True, "Juniper": False}
        )
        verdicts = {
            v.vendor: v
            for v in classify_vendors(
                factored, labels, table=small_openssl_table,
                check_safe_primes=False,
            )
        }
        assert verdicts["McAfee"].verdict == "openssl"
        assert verdicts["McAfee"].satisfying_fraction == 1.0
        # With a 64-prime table the by-chance rate is higher than 7.5%, but
        # still far from 100%; the not-openssl verdict needs fraction <= 0.5.
        assert verdicts["Juniper"].verdict in ("not-openssl", "inconclusive")

    def test_few_primes_inconclusive(self, small_openssl_table):
        factored, labels = corpus(
            small_openssl_table, {"Tiny": True}, keys_per_vendor=1
        )
        (verdict,) = classify_vendors(
            factored, labels, table=small_openssl_table, min_primes=4,
            check_safe_primes=False,
        )
        assert verdict.verdict == "inconclusive"

    def test_unlabelled_moduli_ignored(self, small_openssl_table):
        factored, labels = corpus(small_openssl_table, {"HP": True})
        extra_rng = random.Random(9)
        p = generate_prime(48, extra_rng)
        q = generate_prime(48, extra_rng)
        factored[p * q] = FactoredModulus(p * q, min(p, q), max(p, q))
        verdicts = classify_vendors(
            factored, labels, table=small_openssl_table, check_safe_primes=False
        )
        assert {v.vendor for v in verdicts} == {"HP"}

    def test_fingerprint_only_covers_factored_vendors(self, small_openssl_table):
        # A vendor with no factored keys never appears (the paper's caveat:
        # "the fingerprint requires the private key").
        verdicts = classify_vendors({}, {}, table=small_openssl_table)
        assert verdicts == []

    def test_safe_prime_counting(self, small_openssl_table):
        # Force check_safe_primes on a small corpus and ensure the field is
        # populated without crashing (safe primes are rare at 48 bits).
        factored, labels = corpus(small_openssl_table, {"X": True}, keys_per_vendor=2)
        (verdict,) = classify_vendors(
            factored, labels, table=small_openssl_table,
            min_primes=1, check_safe_primes=True,
        )
        assert verdict.safe_primes >= 0
        assert verdict.primes_examined == 4
