"""Tests for subject/banner fingerprint rules."""

import random
from datetime import date

import pytest

from repro.crypto.certs import DistinguishedName, self_signed_certificate
from repro.crypto.rsa import generate_rsa_keypair
from repro.fingerprint.rules import identify_by_subject


@pytest.fixture(scope="module")
def keypair():
    return generate_rsa_keypair(64, random.Random(77))


def make_cert(keypair, subject, sans=()):
    return self_signed_certificate(
        subject=subject,
        keypair=keypair,
        serial=1,
        not_before=date(2012, 1, 1),
        not_after=date(2022, 1, 1),
        subject_alt_names=tuple(sans),
    )


class TestSubjectRules:
    def test_juniper_system_generated(self, keypair):
        cert = make_cert(keypair, DistinguishedName(CN="system generated"))
        match = identify_by_subject(cert)
        assert match.vendor == "Juniper"
        assert match.rule == "system-generated"

    def test_cisco_model_from_ou(self, keypair):
        cert = make_cert(
            keypair, DistinguishedName(C="US", O="Cisco", OU="RV220W", CN="rv-1")
        )
        match = identify_by_subject(cert)
        assert match.vendor == "Cisco"
        assert match.model == "RV220W"

    def test_vendor_in_o(self, keypair):
        for vendor in ("Innominate", "ZyXEL", "TP-LINK", "Huawei"):
            cert = make_cert(keypair, DistinguishedName(O=vendor, CN="x"))
            assert identify_by_subject(cert).vendor == vendor

    def test_dell_imaging_beats_o_rule(self, keypair):
        cert = make_cert(
            keypair,
            DistinguishedName(O="Dell Inc.", OU="Dell Imaging Group", CN="p1"),
        )
        match = identify_by_subject(cert)
        assert match.vendor == "Dell"
        assert match.rule == "dell-imaging"

    def test_siemens(self, keypair):
        cert = make_cert(
            keypair,
            DistinguishedName(O="Siemens Building Technologies", CN="bacnet-1"),
        )
        assert identify_by_subject(cert).vendor == "Siemens"

    def test_fritz_myfritz_cn(self, keypair):
        cert = make_cert(keypair, DistinguishedName(CN="ab12cd34ef.myfritz.net"))
        assert identify_by_subject(cert).vendor == "Fritz!Box"

    def test_fritz_sans(self, keypair):
        cert = make_cert(
            keypair,
            DistinguishedName(CN="fritz.box"),
            sans=("fritz.fonwlan.box", "fritz.box"),
        )
        assert identify_by_subject(cert).vendor == "Fritz!Box"

    def test_ip_only_unattributable(self, keypair):
        cert = make_cert(keypair, DistinguishedName(CN="192.168.4.7"))
        assert identify_by_subject(cert) is None

    def test_owner_named_unattributable(self, keypair):
        cert = make_cert(
            keypair, DistinguishedName(O="Acme Manufacturing", CN="mgmt-1")
        )
        assert identify_by_subject(cert) is None

    def test_web_server_unattributable(self, keypair):
        cert = make_cert(keypair, DistinguishedName(C="US", CN="www.example.com"))
        assert identify_by_subject(cert) is None


class TestBannerRules:
    def test_snapgear_banner_identifies_mcafee(self, keypair):
        cert = make_cert(
            keypair,
            DistinguishedName(
                O="Default Organization", OU="Default Unit", CN="Default Common Name"
            ),
        )
        assert identify_by_subject(cert) is None  # DN alone is not enough
        match = identify_by_subject(cert, banner="SnapGear Management Console")
        assert match.vendor == "McAfee"
        assert match.rule == "banner"

    def test_unknown_banner_ignored(self, keypair):
        cert = make_cert(keypair, DistinguishedName(CN="10.0.0.1"))
        assert identify_by_subject(cert, banner="hello world") is None
