"""Tests for shared-prime extrapolation and prime cliques."""

import random

from repro.core.results import FactoredModulus
from repro.crypto.primes import generate_prime
from repro.fingerprint.sharedprimes import (
    extrapolate_vendors,
    find_prime_cliques,
    label_degenerate_cliques,
    shared_prime_overlaps,
)


def fact(p, q):
    return FactoredModulus(modulus=p * q, p=min(p, q), q=max(p, q))


def make_primes(count, seed=1):
    rng = random.Random(seed)
    return [generate_prime(32, rng) for _ in range(count)]


class TestFindPrimeCliques:
    def test_disjoint_pairs_form_separate_cliques(self):
        a, b, c, d = make_primes(4)
        factored = {a * b: fact(a, b), c * d: fact(c, d)}
        cliques = find_prime_cliques(factored)
        assert len(cliques) == 2

    def test_shared_prime_merges_cliques(self):
        a, b, c = make_primes(3)
        factored = {a * b: fact(a, b), a * c: fact(a, c)}
        cliques = find_prime_cliques(factored)
        assert len(cliques) == 1
        assert cliques[0].primes == {a, b, c}
        assert cliques[0].moduli == {a * b, a * c}

    def test_chain_connectivity(self):
        a, b, c, d = make_primes(4)
        factored = {a * b: fact(a, b), b * c: fact(b, c), c * d: fact(c, d)}
        assert len(find_prime_cliques(factored)) == 1

    def test_empty(self):
        assert find_prime_cliques({}) == []


class TestDegenerateCliques:
    def test_ibm_style_clique_detected(self):
        primes = make_primes(9, seed=2)
        factored = {}
        for i, p in enumerate(primes):
            for q in primes[i + 1 :]:
                factored[p * q] = fact(p, q)
        assert len(factored) == 36
        cliques = find_prime_cliques(factored)
        degenerate = label_degenerate_cliques(cliques)
        assert len(degenerate) == 1
        assert degenerate[0].label == "IBM"
        assert len(degenerate[0].primes) == 9

    def test_entropy_hole_pattern_not_degenerate(self):
        # One shared prime with many unique second primes: many primes, not
        # a degenerate generator.
        primes = make_primes(15, seed=3)
        shared = primes[0]
        factored = {shared * q: fact(shared, q) for q in primes[1:]}
        degenerate = label_degenerate_cliques(find_prime_cliques(factored))
        assert degenerate == []


class TestExtrapolation:
    def test_unlabelled_modulus_inherits_pool_vendor(self):
        a, b, c = make_primes(3, seed=4)
        factored = {a * b: fact(a, b), a * c: fact(a, c)}
        labels = {a * b: "Fritz!Box"}
        new = extrapolate_vendors(factored, labels)
        assert new == {a * c: "Fritz!Box"}

    def test_fixpoint_chains_through_new_labels(self):
        a, b, c, d = make_primes(4, seed=5)
        factored = {
            a * b: fact(a, b),
            b * c: fact(b, c),
            c * d: fact(c, d),
        }
        labels = {a * b: "Fritz!Box"}
        new = extrapolate_vendors(factored, labels)
        # b*c labelled via b, then c*d via c in a second iteration.
        assert new == {b * c: "Fritz!Box", c * d: "Fritz!Box"}

    def test_no_votes_no_label(self):
        a, b, c, d = make_primes(4, seed=6)
        factored = {a * b: fact(a, b), c * d: fact(c, d)}
        assert extrapolate_vendors(factored, {a * b: "HP"}) == {}

    def test_majority_wins_on_conflict(self):
        a, b, c, d = make_primes(4, seed=7)
        factored = {
            a * b: fact(a, b),
            a * c: fact(a, c),
            a * d: fact(a, d),
        }
        labels = {a * b: "Xerox", a * c: "Xerox"}
        new = extrapolate_vendors(factored, labels)
        assert new[a * d] == "Xerox"


class TestOverlaps:
    def test_dell_xerox_style_overlap_counted(self):
        a, b, c = make_primes(3, seed=8)
        factored = {a * b: fact(a, b), a * c: fact(a, c)}
        labels = {a * b: "Dell", a * c: "Xerox"}
        overlaps = shared_prime_overlaps(factored, labels)
        assert overlaps == {frozenset({"Dell", "Xerox"}): 1}

    def test_same_vendor_no_overlap(self):
        a, b, c = make_primes(3, seed=9)
        factored = {a * b: fact(a, b), a * c: fact(a, c)}
        labels = {a * b: "Dell", a * c: "Dell"}
        assert shared_prime_overlaps(factored, labels) == {}
