"""Differential suite: the incremental engine vs every batch engine.

Seeded dynamic corpora — insert-then-check sequences, duplicates, prime
powers, nine-prime cliques — run through the incremental store/engine
and through ``naive``/``classic``/``clustered_streaming``, asserting
identical vulnerable sets everywhere and identical factors on squarefree
corpora (well-formed RSA; on prime-power pathologies the divisor
multiplicity caveat is the clustered engine's, shared and documented).
Plus the resume drill: a real ``SIGKILL`` mid-insert, recovered on the
next open.
"""

import math
import os
import random
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core.batchgcd import batch_gcd
from repro.core.clustered import ClusteredBatchGcd
from repro.core.incremental import IncrementalBatchGcd
from repro.core.naive import naive_pairwise_gcd
from repro.crypto.primes import generate_prime
from repro.numt.incremental import ProductTreeStore

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _flags(result):
    return [d > 1 for d in result.divisors]


def _incremental_insert_run(moduli):
    """The serving-path shape: insert one at a time, read the final state."""
    store = ProductTreeStore()
    for m in moduli:
        store.insert(m)
    from repro.core.results import BatchGcdResult

    return BatchGcdResult(store.moduli, store.divisors())


def _reference_engines():
    return [
        ("naive", naive_pairwise_gcd),
        ("classic", batch_gcd),
        (
            "clustered_streaming",
            lambda m: ClusteredBatchGcd(k=3, scheduler="streaming").run(m),
        ),
    ]


def assert_incremental_agrees(moduli, squarefree=False):
    incremental = _incremental_insert_run(moduli)
    engine_run = IncrementalBatchGcd().run(moduli)
    for label, run in _reference_engines():
        reference = run(moduli)
        assert _flags(incremental) == _flags(reference), (
            f"insert-path flags diverge from {label}"
        )
        assert _flags(engine_run) == _flags(reference), (
            f"engine flags diverge from {label}"
        )
    classic = batch_gcd(moduli)
    if squarefree:
        assert incremental.divisors == classic.divisors
        assert sorted(
            (f.modulus, f.p, f.q) for f in incremental.resolve().values()
        ) == sorted(
            (f.modulus, f.p, f.q) for f in classic.resolve().values()
        )
    return incremental


class TestDynamicCorpora:
    def test_insert_then_check_sequence(self):
        # Every prefix of a dynamic corpus must agree with a batch run
        # over that prefix: this is the store's serving contract.
        rng = random.Random(31)
        pool = [generate_prime(32, rng) for _ in range(8)]
        store = ProductTreeStore()
        corpus = []
        for step in range(30):
            a, b = rng.sample(range(8), 2)
            m = pool[a] * pool[b]
            outcome = store.insert(m)
            corpus.append(m)
            classic = batch_gcd(corpus)
            assert (outcome.divisor > 1) == (classic.divisors[-1] > 1), (
                f"step {step}"
            )
            assert [d > 1 for d in store.divisors()] == _flags(classic)

    def test_squarefree_dynamic_corpus_exact(self):
        rng = random.Random(32)
        pool = [generate_prime(36, rng) for _ in range(12)]
        moduli = []
        for _ in range(40):
            a, b = rng.sample(range(12), 2)
            moduli.append(pool[a] * pool[b])
        moduli.append(moduli[7])  # exact duplicate stays squarefree
        assert_incremental_agrees(moduli, squarefree=True)

    def test_duplicates(self):
        rng = random.Random(33)
        p, q, r, s = (generate_prime(36, rng) for _ in range(4))
        dup = p * q
        incremental = assert_incremental_agrees(
            [dup, r * s, dup, dup], squarefree=True
        )
        assert _flags(incremental) == [True, False, True, True]

    def test_prime_powers(self):
        rng = random.Random(34)
        p, q, r, s = (generate_prime(36, rng) for _ in range(4))
        assert_incremental_agrees([p * p, p * q, q * r])
        isolated = assert_incremental_agrees([p * p, q * r, q * s])
        assert _flags(isolated)[0] is False
        assert_incremental_agrees([p * p, p * p, q * r])

    def test_nine_prime_cliques(self):
        rng = random.Random(35)
        pool = [generate_prime(24, rng) for _ in range(12)]
        clique = [math.prod(rng.sample(pool, 9)) for _ in range(3)]
        clean = [
            generate_prime(40, rng) * generate_prime(40, rng)
            for _ in range(3)
        ]
        moduli = [
            clique[0], clean[0], clique[1], clean[1], clique[2], clean[2],
        ]
        incremental = assert_incremental_agrees(moduli)
        assert _flags(incremental) == [True, False, True, False, True, False]

    @pytest.mark.parametrize("seed", [71, 72, 73, 74])
    def test_random_pathological_mixes(self, seed):
        rng = random.Random(seed)
        pool = [generate_prime(28, rng) for _ in range(6)]
        moduli = []
        for _ in range(rng.randrange(8, 16)):
            shape = rng.random()
            if shape < 0.4 or not moduli:
                moduli.append(
                    generate_prime(32, rng) * generate_prime(32, rng)
                )
            elif shape < 0.6:
                moduli.append(rng.choice(pool) * rng.choice(pool))
            elif shape < 0.75:
                moduli.append(rng.choice(moduli))
            else:
                moduli.append(math.prod(rng.sample(pool, 5)))
        assert_incremental_agrees(moduli)


class TestEngineExtension:
    def test_persistent_extension_matches_full_recompute(self, tmp_path):
        rng = random.Random(41)
        pool = [generate_prime(36, rng) for _ in range(14)]
        moduli = []
        for _ in range(70):
            a, b = rng.sample(range(14), 2)
            moduli.append(pool[a] * pool[b])
        engine = IncrementalBatchGcd(store_dir=tmp_path / "store")
        engine.run(moduli[:50])
        assert engine.last_mode == "bootstrap"
        grown = engine.run(moduli)
        assert engine.last_mode == "incremental"
        reference = batch_gcd(moduli)
        assert grown.divisors == reference.divisors
        assert sorted(grown.resolve()) == sorted(reference.resolve())

    def test_oversized_extension_rebootstraps(self, tmp_path):
        rng = random.Random(42)
        moduli = [
            generate_prime(32, rng) * generate_prime(32, rng)
            for _ in range(20)
        ]
        engine = IncrementalBatchGcd(
            store_dir=tmp_path / "store", max_incremental_batch=4
        )
        engine.run(moduli[:10])
        engine.run(moduli)  # 10 new > 4
        assert engine.last_mode == "bootstrap"
        assert engine.open_store().count == 20

    def test_mismatched_corpus_leaves_store_alone(self, tmp_path):
        rng = random.Random(43)
        moduli = [
            generate_prime(32, rng) * generate_prime(32, rng)
            for _ in range(8)
        ]
        engine = IncrementalBatchGcd(store_dir=tmp_path / "store")
        engine.run(moduli)
        other = list(reversed(moduli))
        result = engine.run(other)
        assert engine.last_mode == "bulk-mismatch"
        assert result.divisors == batch_gcd(other).divisors
        assert engine.open_store().moduli == moduli


_KILL_CHILD = textwrap.dedent(
    """
    import os, signal, sys
    from repro.numt.incremental import ProductTreeStore

    store_dir, kill_at = sys.argv[1], int(sys.argv[2])
    moduli = [int(line, 16) for line in sys.stdin.read().split()]

    store = ProductTreeStore(store_dir)
    inserted = store.count
    original = store._write_manifest

    def manifest_then_maybe_die():
        # SIGKILL *before* the manifest commit of the insert that brings
        # the corpus to kill_at moduli: the journal and level appends
        # for that insert are on disk, the manifest is not — the
        # canonical mid-insert death.  (The corpus list grows before the
        # manifest write, so store.count is already the new size here.)
        if store.count == kill_at:
            os.kill(os.getpid(), signal.SIGKILL)
        original()

    store._write_manifest = manifest_then_maybe_die
    for m in moduli[inserted:]:
        store.insert(m)
    print(store.count)
    """
)


class TestSigkillResumeDrill:
    def test_sigkill_mid_insert_resumes_cleanly(self, tmp_path):
        rng = random.Random(51)
        pool = [generate_prime(32, rng) for _ in range(8)]
        moduli = []
        for _ in range(24):
            a, b = rng.sample(range(8), 2)
            moduli.append(pool[a] * pool[b])
        moduli[15] = moduli[4]  # the killed insert lands on a duplicate

        store_dir = tmp_path / "store"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        feed = "\n".join(f"{m:x}" for m in moduli)

        first = subprocess.run(
            [sys.executable, "-c", _KILL_CHILD, str(store_dir), "16"],
            input=feed, capture_output=True, text=True, env=env,
        )
        assert first.returncode == -signal.SIGKILL

        # The next open replays the journalled insert, then the child
        # finishes the remaining moduli on top of the recovered state.
        second = subprocess.run(
            [sys.executable, "-c", _KILL_CHILD, str(store_dir), "-1"],
            input=feed, capture_output=True, text=True, env=env,
        )
        assert second.returncode == 0, second.stderr
        assert second.stdout.strip() == str(len(moduli))

        recovered = ProductTreeStore(store_dir)
        clean = ProductTreeStore()
        for m in moduli:
            clean.insert(m)
        assert recovered.moduli == moduli
        assert recovered.divisors() == clean.divisors()
        assert recovered.digest == clean.digest
        assert [d > 1 for d in recovered.divisors()] == _flags(
            batch_gcd(moduli)
        )
