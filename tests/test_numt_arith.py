"""Tests for repro.numt.arith (egcd, modinv, roots, CRT)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.numt.arith import crt_pair, egcd, introot, is_perfect_power, modinv


class TestEgcd:
    def test_basic(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == 2

    def test_coprime(self):
        g, x, y = egcd(17, 13)
        assert g == 1
        assert 17 * x + 13 * y == 1

    def test_zero_operands(self):
        assert egcd(0, 5)[0] == 5
        assert egcd(5, 0)[0] == 5
        assert egcd(0, 0)[0] == 0

    @given(st.integers(min_value=-10**9, max_value=10**9),
           st.integers(min_value=-10**9, max_value=10**9))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g


class TestModinv:
    def test_basic(self):
        assert modinv(3, 7) == 5
        assert (3 * modinv(3, 7)) % 7 == 1

    def test_large(self):
        m = 2**127 - 1
        a = 0xDEADBEEF
        assert (a * modinv(a, m)) % m == 1

    def test_not_invertible(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    def test_negative_input_normalised(self):
        assert ((-3) * modinv(-3, 7)) % 7 == 1

    @given(st.integers(min_value=2, max_value=10**6),
           st.integers(min_value=1, max_value=10**6))
    def test_inverse_property(self, m, a):
        if math.gcd(a, m) != 1:
            with pytest.raises(ValueError):
                modinv(a, m)
        else:
            assert (a * modinv(a, m)) % m == 1


class TestIntroot:
    def test_square_root(self):
        assert introot(144, 2) == 12
        assert introot(145, 2) == 12

    def test_cube_root(self):
        assert introot(27, 3) == 3
        assert introot(26, 3) == 2

    def test_first_root(self):
        assert introot(99, 1) == 99

    def test_edges(self):
        assert introot(0, 5) == 0
        assert introot(1, 5) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            introot(-1, 2)
        with pytest.raises(ValueError):
            introot(8, 0)

    @given(st.integers(min_value=0, max_value=10**30),
           st.integers(min_value=1, max_value=10))
    def test_floor_property(self, n, k):
        r = introot(n, k)
        assert r**k <= n
        assert (r + 1) ** k > n


class TestIsPerfectPower:
    def test_square(self):
        assert is_perfect_power(49) == (7, 2)

    def test_cube(self):
        base, exp = is_perfect_power(3**5)
        assert base**exp == 3**5

    def test_not_power(self):
        assert is_perfect_power(10) is None
        assert is_perfect_power(2**61 - 1) is None

    def test_small(self):
        assert is_perfect_power(3) is None
        assert is_perfect_power(4) == (2, 2)

    def test_rsa_square_modulus_detected(self):
        p = 0xFFFF_FFFB  # a prime
        assert is_perfect_power(p * p) == (p, 2)


class TestCrtPair:
    def test_basic(self):
        x, m = crt_pair(2, 3, 3, 5)
        assert m == 15
        assert x % 3 == 2
        assert x % 5 == 3

    def test_not_coprime(self):
        with pytest.raises(ValueError):
            crt_pair(1, 6, 2, 9)

    @given(st.integers(min_value=2, max_value=10**4),
           st.integers(min_value=2, max_value=10**4),
           st.integers(min_value=0, max_value=10**8))
    def test_reconstruction(self, m1, m2, value):
        if math.gcd(m1, m2) != 1:
            return
        x, m = crt_pair(value % m1, m1, value % m2, m2)
        assert m == m1 * m2
        assert x == value % m
