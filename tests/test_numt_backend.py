"""Tests for the pluggable big-int backend seam (`repro.numt.backend`)."""

import pytest

from repro.core.batchgcd import batch_gcd
from repro.numt.backend import (
    BACKEND_ENV_VAR,
    PYTHON_BACKEND,
    available_backends,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.numt.trees import product_tree, tree_product

GMPY2_AVAILABLE = "gmpy2" in available_backends()


class TestResolution:
    def test_default_is_python(self):
        assert resolve_backend() is PYTHON_BACKEND
        assert get_backend() is PYTHON_BACKEND

    def test_explicit_name(self):
        assert resolve_backend("python") is PYTHON_BACKEND

    def test_backend_instance_passes_through(self):
        assert resolve_backend(PYTHON_BACKEND) is PYTHON_BACKEND

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown big-int backend"):
            resolve_backend("bignum9000")

    @pytest.mark.skipif(GMPY2_AVAILABLE, reason="gmpy2 installed here")
    def test_unavailable_backend_raises_loudly(self):
        with pytest.raises(ValueError, match="not available"):
            resolve_backend("gmpy2")

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend() is PYTHON_BACKEND
        monkeypatch.setenv(BACKEND_ENV_VAR, "bignum9000")
        with pytest.raises(ValueError):
            resolve_backend()

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "bignum9000")
        assert resolve_backend("python") is PYTHON_BACKEND

    def test_available_always_includes_python(self):
        assert "python" in available_backends()


class TestActivation:
    def test_use_backend_restores_previous(self):
        before = get_backend()
        with use_backend("python") as active:
            assert active is PYTHON_BACKEND
        assert get_backend() is before

    def test_use_backend_restores_after_error(self):
        before = get_backend()
        with pytest.raises(RuntimeError), use_backend("python"):
            raise RuntimeError("boom")
        assert get_backend() is before

    def test_set_backend_none_resets_to_python(self):
        previous = set_backend(None)
        try:
            assert get_backend() is PYTHON_BACKEND
        finally:
            set_backend(previous)


class TestBackendSemantics:
    def test_python_wrap_all_is_copy(self):
        values = [3, 5, 7]
        wrapped = PYTHON_BACKEND.wrap_all(values)
        assert wrapped == values
        assert wrapped is not values

    def test_trees_identical_across_available_backends(self):
        values = [101 * 103, 101 * 107, 109 * 113]
        reference = product_tree(values, backend="python")
        for name in available_backends():
            tree = product_tree(values, backend=name)
            assert [[int(v) for v in level] for level in tree] == reference
            assert int(tree_product(values, backend=name)) == 101 * 103 * 101 * 107 * 109 * 113

    def test_batch_gcd_identical_across_available_backends(self):
        moduli = [101 * 103, 101 * 107, 127 * 131, 103 * 127]
        reference = batch_gcd(moduli, backend="python").divisors
        for name in available_backends():
            assert batch_gcd(moduli, backend=name).divisors == reference

    @pytest.mark.skipif(not GMPY2_AVAILABLE, reason="gmpy2 not installed")
    def test_gmpy2_unwraps_to_plain_int(self):
        result = batch_gcd([101 * 103, 101 * 107], backend="gmpy2")
        assert all(type(d) is int for d in result.divisors)
        assert result.divisors == [101, 101]
