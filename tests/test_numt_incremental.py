"""Unit tests for the incremental product tree, its store, and the journal.

The tree must be level-for-level identical to a batch-built
:func:`repro.numt.trees.product_tree` after any append sequence, the
single-descent check must equal the classic batch-GCD divisor on the
union corpus, and the persistent store must survive a kill at every
intermediate write step of an insert.
"""

import json
import random

import pytest

from repro.core.batchgcd import batch_gcd_divisors
from repro.crypto.primes import generate_prime
from repro.faults.checkpoint import corpus_digest
from repro.faults.journal import MutationJournal
from repro.numt.incremental import (
    IncrementalProductTree,
    ProductTreeStore,
    StoreCorruptError,
    empty_digest,
    extend_digest,
)
from repro.numt.trees import product_tree


def _semiprime(rng, pool=None, bits=40):
    if pool is not None:
        a, b = rng.sample(range(len(pool)), 2)
        return pool[a] * pool[b]
    return generate_prime(bits, rng) * generate_prime(bits, rng)


class TestMutationJournal:
    def test_append_pending_commit_roundtrip(self, tmp_path):
        journal = MutationJournal(tmp_path / "j.jsonl")
        s0 = journal.append({"op": "a"})
        s1 = journal.append({"op": "b"})
        assert [r["op"] for r in journal.pending()] == ["a", "b"]
        journal.commit(s0)
        assert [r["_seq"] for r in journal.pending()] == [s1]
        journal.clear()
        assert journal.pending() == []

    def test_seq_survives_reopen(self, tmp_path):
        journal = MutationJournal(tmp_path / "j.jsonl")
        journal.append({"op": "a"})
        reopened = MutationJournal(tmp_path / "j.jsonl")
        assert reopened.append({"op": "b"}) == 1

    def test_torn_tail_is_discarded(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = MutationJournal(path)
        journal.append({"op": "a"})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"op": "torn", "_se')
        assert [r["op"] for r in MutationJournal(path).pending()] == ["a"]

    def test_reserved_seq_key_rejected(self, tmp_path):
        journal = MutationJournal(tmp_path / "j.jsonl")
        with pytest.raises(ValueError):
            journal.append({"_seq": 7})

    def test_no_file_until_first_append(self, tmp_path):
        journal = MutationJournal(tmp_path / "j.jsonl")
        assert journal.pending() == []
        assert not (tmp_path / "j.jsonl").exists()


class TestIncrementalProductTree:
    @pytest.mark.parametrize("n", range(18))
    def test_append_matches_batch_built_tree(self, n):
        rng = random.Random(100 + n)
        pool = [generate_prime(32, rng) for _ in range(8)]
        moduli = [_semiprime(rng, pool) for _ in range(n)]
        tree = IncrementalProductTree()
        for m in moduli:
            tree.append(m)
        if n:
            assert tree.levels == product_tree(moduli)
        assert tree.count == n
        assert [len(level) for level in tree.levels] == (
            IncrementalProductTree.level_sizes(n) if n else [0]
        )

    def test_divisor_against_equals_classic_union_divisor(self):
        rng = random.Random(2)
        pool = [generate_prime(32, rng) for _ in range(8)]
        tree = IncrementalProductTree()
        corpus = []
        for step in range(40):
            m = _semiprime(rng, pool)
            expected = (
                batch_gcd_divisors(corpus + [m])[-1] if corpus else 1
            )
            assert tree.divisor_against(m) == expected, f"step {step}"
            tree.append(m)
            corpus.append(m)

    def test_leaves_sharing_finds_exactly_the_partners(self):
        import math

        rng = random.Random(3)
        pool = [generate_prime(32, rng) for _ in range(6)]
        corpus = [_semiprime(rng, pool) for _ in range(30)]
        tree = IncrementalProductTree(corpus)
        probe = pool[0] * pool[1]
        divisor = tree.divisor_against(probe)
        hits = tree.leaves_sharing(divisor)
        expected = {
            i for i, n in enumerate(corpus) if math.gcd(n, probe) > 1
        }
        assert {i for i, _ in hits} == expected
        for i, shared in hits:
            assert shared > 1 and corpus[i] % shared == 0

    def test_empty_tree_answers_trivially(self):
        tree = IncrementalProductTree()
        assert tree.divisor_against(35) == 1
        assert tree.leaves_sharing(5) == []
        assert tree.node_count == 0

    def test_rejects_bad_moduli(self):
        tree = IncrementalProductTree()
        with pytest.raises(ValueError):
            tree.append(1)
        with pytest.raises(ValueError):
            tree.divisor_against(0)


class TestChainedDigest:
    def test_matches_checkpoint_corpus_digest(self):
        rng = random.Random(4)
        corpus = [_semiprime(rng) for _ in range(9)]
        chained = empty_digest()
        for m in corpus:
            chained = extend_digest(chained, m)
        # Chained identity is order-sensitive like the flat digest, and
        # distinct from it (it folds the running hash back in), but both
        # derive from the same per-modulus record encoding.
        other = empty_digest()
        for m in reversed(corpus):
            other = extend_digest(other, m)
        assert chained != other
        assert chained != corpus_digest(corpus)
        assert len(chained) == len(corpus_digest(corpus)) == 64


class TestProductTreeStore:
    def _corpus(self, seed, n=40):
        rng = random.Random(seed)
        pool = [generate_prime(32, rng) for _ in range(10)]
        return [_semiprime(rng, pool) for _ in range(n)]

    def test_roundtrip_preserves_everything(self, tmp_path):
        corpus = self._corpus(10)
        store = ProductTreeStore(tmp_path / "store")
        for m in corpus:
            store.insert(m)
        reopened = ProductTreeStore(tmp_path / "store")
        assert reopened.moduli == corpus
        assert reopened.divisors() == store.divisors()
        assert reopened.digest == store.digest
        assert reopened.node_count == store.node_count

    def test_divisors_match_classic_flags(self, tmp_path):
        corpus = self._corpus(11)
        store = ProductTreeStore(tmp_path / "store")
        for m in corpus:
            store.insert(m)
        classic = batch_gcd_divisors(corpus)
        assert [d > 1 for d in store.divisors()] == [d > 1 for d in classic]

    def test_memory_only_store_has_no_files(self, tmp_path):
        store = ProductTreeStore()
        for m in self._corpus(12, n=10):
            store.insert(m)
        assert store.count == 10
        assert list(tmp_path.iterdir()) == []

    def test_level_files_are_compacted(self, tmp_path):
        corpus = self._corpus(13, n=64)
        store = ProductTreeStore(tmp_path / "store")
        for m in corpus:
            store.insert(m)
        # Root level sees one superseded record per insert; compaction
        # must keep the file bounded by a constant factor of live nodes.
        top = sorted((tmp_path / "store" / "nodes").glob("level-*.jsonl"))[-1]
        records = [line for line in top.read_text().splitlines() if line]
        assert len(records) <= 4 * 1 + 16

    def test_missing_leaf_records_raise(self, tmp_path):
        store = ProductTreeStore(tmp_path / "store")
        for m in self._corpus(14, n=8):
            store.insert(m)
        leaves = tmp_path / "store" / "nodes" / "level-0.jsonl"
        kept = leaves.read_text().splitlines()[:4]
        leaves.write_text("\n".join(kept) + "\n")
        with pytest.raises(StoreCorruptError):
            ProductTreeStore(tmp_path / "store")

    def test_internal_levels_rebuild_from_leaves(self, tmp_path):
        corpus = self._corpus(15, n=12)
        store = ProductTreeStore(tmp_path / "store")
        for m in corpus:
            store.insert(m)
        (tmp_path / "store" / "nodes" / "level-1.jsonl").unlink()
        reopened = ProductTreeStore(tmp_path / "store")
        assert reopened.moduli == corpus
        assert reopened.divisors() == store.divisors()
        clean = IncrementalProductTree(corpus)
        assert reopened.node_count == clean.node_count

    def test_backend_mismatch_raises(self, tmp_path):
        store = ProductTreeStore(tmp_path / "store")
        store.insert(self._corpus(16, n=2)[0])
        with pytest.raises(ValueError):
            ProductTreeStore(tmp_path / "store", backend="gmpy2")

    def test_bootstrap_requires_extension(self, tmp_path):
        corpus = self._corpus(17, n=10)
        store = ProductTreeStore(tmp_path / "store")
        store.bootstrap(corpus, batch_gcd_divisors(corpus))
        with pytest.raises(ValueError):
            store.bootstrap(list(reversed(corpus)))
        longer = corpus + [_semiprime(random.Random(99))]
        store.bootstrap(longer, batch_gcd_divisors(longer))
        assert ProductTreeStore(tmp_path / "store").count == len(longer)

    def test_apply_job_is_idempotent_and_resumable(self, tmp_path):
        corpus = self._corpus(18, n=20)
        store = ProductTreeStore(tmp_path / "store")
        assert store.apply_job("j1", corpus[:8]) == (0, 8)
        assert store.apply_job("j1", corpus[:8]) == (0, 8)
        assert store.count == 8
        reopened = ProductTreeStore(tmp_path / "store")
        assert reopened.apply_job("j1", corpus[:8]) == (0, 8)
        assert reopened.apply_job("j2", corpus[8:]) == (8, 12)
        assert reopened.moduli == corpus
        assert reopened.jobs == {"j1": (0, 8), "j2": (8, 12)}


class TestCrashRecovery:
    """Kill the store at every intermediate write step of an insert."""

    def _crashing_store(self, directory, fail_step):
        class Boom(RuntimeError):
            pass

        store = ProductTreeStore(directory)
        state = {"step": 0}
        originals = {
            "levels": store._append_level_records,
            "hits": store._write_hits,
            "manifest": store._write_manifest,
        }

        def tick():
            state["step"] += 1
            if state["step"] > fail_step:
                raise Boom

        store._append_level_records = lambda dirty: (
            tick(),
            originals["levels"](dirty),
        )[1]
        store._write_hits = lambda: (tick(), originals["hits"]())[1]
        store._write_manifest = lambda: (tick(), originals["manifest"]())[1]
        return store, Boom

    @pytest.mark.parametrize("fail_step", [0, 1, 2])
    def test_recovery_replays_to_the_exact_clean_state(
        self, tmp_path, fail_step
    ):
        rng = random.Random(20)
        pool = [generate_prime(32, rng) for _ in range(8)]
        base = [_semiprime(rng, pool) for _ in range(25)]
        final = base[3]  # duplicate: guarantees hit updates at the crash
        clean = ProductTreeStore()
        for m in base + [final]:
            clean.insert(m)

        store = ProductTreeStore(tmp_path / "store")
        for m in base:
            store.insert(m)
        crasher, boom = self._crashing_store(tmp_path / "store", fail_step)
        with pytest.raises(boom):
            crasher.insert(final)

        recovered = ProductTreeStore(tmp_path / "store")
        assert recovered.replayed_inserts == 1
        assert recovered.moduli == base + [final]
        assert recovered.divisors() == clean.divisors()
        assert recovered.digest == clean.digest

    def test_torn_journal_tail_is_ignored(self, tmp_path):
        rng = random.Random(21)
        base = [_semiprime(rng) for _ in range(6)]
        store = ProductTreeStore(tmp_path / "store")
        for m in base:
            store.insert(m)
        with open(tmp_path / "store" / "journal.jsonl", "a") as fh:
            fh.write(json.dumps({"index": 6, "m": "dead"})[:-4])
        recovered = ProductTreeStore(tmp_path / "store")
        assert recovered.moduli == base
        assert recovered.replayed_inserts == 0
