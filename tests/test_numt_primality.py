"""Tests for repro.numt.primality (Miller-Rabin and prime search)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.numt.primality import is_probable_prime, next_prime, random_prime
from repro.numt.sieve import primes_below


class TestIsProbablePrime:
    def test_small_primes(self):
        expected = set(primes_below(200))
        for n in range(200):
            assert is_probable_prime(n) == (n in expected), n

    def test_negative_and_edge(self):
        assert not is_probable_prime(-7)
        assert not is_probable_prime(0)
        assert not is_probable_prime(1)

    def test_known_mersenne_primes(self):
        for exponent in (13, 17, 19, 31, 61, 89, 107, 127):
            assert is_probable_prime(2**exponent - 1), exponent

    def test_known_mersenne_composites(self):
        for exponent in (11, 23, 29, 37, 41):
            assert not is_probable_prime(2**exponent - 1), exponent

    def test_carmichael_numbers_rejected(self):
        # Classic Fermat pseudoprimes must not fool Miller-Rabin.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041):
            assert not is_probable_prime(carmichael), carmichael

    def test_strong_pseudoprimes_base2_rejected(self):
        # Strong pseudoprimes to base 2; caught by the other witnesses.
        for n in (2047, 3277, 4033, 4681, 8321):
            assert not is_probable_prime(n), n

    def test_squares_of_primes_rejected(self):
        for p in (101, 257, 65537):
            assert not is_probable_prime(p * p)

    def test_large_prime_beyond_deterministic_bound(self):
        # 2^127 - 1 is prime and above the deterministic witness bound? It
        # is below; use a known 200-bit prime via next_prime instead.
        p = next_prime(10**60)
        assert is_probable_prime(p)
        assert not is_probable_prime(p + 1)

    @given(st.integers(min_value=2, max_value=10_000))
    def test_matches_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_probable_prime(n) == by_trial

    @given(st.integers(min_value=2, max_value=2**40))
    @settings(max_examples=50)
    def test_composite_products_rejected(self, a):
        assert not is_probable_prime(a * (a + 2) * 2)


class TestNextPrime:
    def test_small_values(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(3) == 5
        assert next_prime(13) == 17

    def test_strictly_greater(self):
        assert next_prime(17) == 19

    def test_after_even(self):
        assert next_prime(90) == 97


class TestRandomPrime:
    def test_exact_bit_length(self, rng):
        for bits in (16, 32, 64, 129):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_two_bit(self, rng):
        assert random_prime(2, rng) in (2, 3)

    def test_rejects_tiny(self, rng):
        with pytest.raises(ValueError):
            random_prime(1, rng)

    def test_deterministic_given_seed(self):
        a = random_prime(64, random.Random(42))
        b = random_prime(64, random.Random(42))
        assert a == b


class TestWitnessDeterminism:
    """Regression: witness selection above the deterministic bound must be
    reproducible across runs (the rng defaulted to unseeded random.Random(),
    which silently broke bit-identical pipelines — DET001)."""

    # A 618-bit-range prime comfortably above the 3.3e24 deterministic bound.
    LARGE_PRIME = 2**89 - 1
    LARGE_COMPOSITE = (2**89 - 1) * (2**107 - 1)

    def _witnesses_used(self, n, rounds=8):
        from repro.numt import primality

        recorded = []
        original = primality._miller_rabin_round

        def recording(n_, d, r, a):
            recorded.append(a)
            return original(n_, d, r, a)

        primality._miller_rabin_round = recording
        try:
            primality.is_probable_prime(n, rounds=rounds)
        finally:
            primality._miller_rabin_round = original
        return recorded

    def test_witnesses_identical_across_calls(self):
        first = self._witnesses_used(self.LARGE_PRIME)
        second = self._witnesses_used(self.LARGE_PRIME)
        # base-2 pre-round plus the 8 derived witnesses, identical each time
        assert len(first) == 9
        assert first == second

    def test_witnesses_identical_across_processes(self):
        import subprocess
        import sys

        code = (
            "from repro.numt.primality import is_probable_prime\n"
            f"print(is_probable_prime({self.LARGE_PRIME}), "
            f"is_probable_prime({self.LARGE_COMPOSITE}))\n"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": str(seed)},
            ).stdout
            for seed in ("1", "2")
        }
        assert outputs == {"True False\n"}

    def test_explicit_rng_still_wins(self):
        from repro.numt.primality import is_probable_prime

        assert is_probable_prime(self.LARGE_PRIME, rng=random.Random(7))
        assert not is_probable_prime(self.LARGE_COMPOSITE, rng=random.Random(7))
