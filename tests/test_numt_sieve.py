"""Tests for repro.numt.sieve."""


from repro.numt.sieve import (
    OPENSSL_TRIAL_PRIME_COUNT,
    first_n_primes,
    primes_below,
    smallest_factor_below,
)


class TestPrimesBelow:
    def test_small_limits(self):
        assert primes_below(2) == []
        assert primes_below(3) == [2]
        assert primes_below(10) == [2, 3, 5, 7]

    def test_limit_exclusive(self):
        assert 13 not in primes_below(13)
        assert 13 in primes_below(14)

    def test_zero_and_negative(self):
        assert primes_below(0) == []
        assert primes_below(-5) == []

    def test_count_below_thousand(self):
        # pi(1000) = 168.
        assert len(primes_below(1000)) == 168

    def test_all_prime(self):
        for p in primes_below(500):
            for d in range(2, int(p**0.5) + 1):
                assert p % d, f"{p} divisible by {d}"


class TestFirstNPrimes:
    def test_first_ten(self):
        assert first_n_primes(10) == (2, 3, 5, 7, 11, 13, 17, 19, 23, 29)

    def test_zero(self):
        assert first_n_primes(0) == ()

    def test_openssl_table_size(self):
        primes = first_n_primes(OPENSSL_TRIAL_PRIME_COUNT + 1)
        assert len(primes) == 2049
        # The 2048th odd prime (skipping 2).
        assert primes[1] == 3

    def test_returns_tuple_and_cached(self):
        a = first_n_primes(100)
        b = first_n_primes(100)
        assert a is b  # lru_cache

    def test_monotonic(self):
        primes = first_n_primes(200)
        assert all(a < b for a, b in zip(primes, primes[1:]))


class TestPrimeStream:
    def test_matches_first_n_primes(self):
        import itertools

        from repro.numt.sieve import prime_stream

        streamed = list(itertools.islice(prime_stream(), 500))
        assert tuple(streamed) == first_n_primes(500)

    def test_crosses_chunk_boundaries_without_duplicates(self):
        import itertools

        from repro.numt.sieve import prime_stream

        streamed = list(itertools.islice(prime_stream(), 2000))
        assert len(set(streamed)) == 2000
        assert streamed == sorted(streamed)


class TestSmallestFactorBelow:
    def test_finds_small_factor(self):
        assert smallest_factor_below(15, 100) == 3
        assert smallest_factor_below(49, 100) == 7

    def test_prime_input_below_limit(self):
        assert smallest_factor_below(97, 1000) == 97

    def test_large_prime_returns_none(self):
        assert smallest_factor_below(2**61 - 1, 1000) is None

    def test_below_two(self):
        assert smallest_factor_below(1, 100) is None
        assert smallest_factor_below(0, 100) is None
