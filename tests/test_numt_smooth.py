"""Tests for smooth-part extraction (bit-error artifact recognition)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.numt.smooth import smooth_part, trial_factor


class TestTrialFactor:
    def test_fully_smooth(self):
        factors, cofactor = trial_factor(2**3 * 3**2 * 5)
        assert factors == {2: 3, 3: 2, 5: 1}
        assert cofactor == 1

    def test_large_cofactor(self):
        p = 2**61 - 1
        factors, cofactor = trial_factor(12 * p)
        assert factors == {2: 2, 3: 1}
        assert cofactor == p

    def test_prime_below_limit(self):
        factors, cofactor = trial_factor(9973)  # prime < 10_000
        assert factors == {9973: 1}
        assert cofactor == 1

    def test_one(self):
        assert trial_factor(1) == ({}, 1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            trial_factor(0)

    @given(st.integers(min_value=1, max_value=10**12))
    def test_reconstruction(self, n):
        factors, cofactor = trial_factor(n)
        product = cofactor * math.prod(p**e for p, e in factors.items())
        assert product == n


class TestSmoothPart:
    def test_smooth_number(self):
        assert smooth_part(720) == 720

    def test_prime_payload_stripped(self):
        p = 2**61 - 1
        assert smooth_part(6 * p) == 6

    def test_bit_error_signature(self):
        # A random-ish integer has a nontrivial smooth part spread over
        # several small primes - unlike a shared RSA prime.
        n = 2 * 3 * 7 * 11 * (2**89 - 1)
        assert smooth_part(n) == 2 * 3 * 7 * 11
