"""Tests for product/remainder trees — the heart of batch GCD."""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.numt.trees import (
    BARRETT_MIN_BITS,
    NEWTON_DIRECT_BITS,
    barrett_reduce,
    newton_reciprocal,
    prepare_reciprocals,
    product_tree,
    remainder_tree,
    remainder_tree_prepared,
    remainder_tree_squared,
    remainders_mod_squares,
    tree_product,
)

moduli_lists = st.lists(st.integers(min_value=2, max_value=2**64), min_size=1, max_size=40)


class TestProductTree:
    def test_single_value(self):
        assert product_tree([7]) == [[7]]

    def test_two_values(self):
        assert product_tree([3, 5]) == [[3, 5], [15]]

    def test_odd_count_carries_last(self):
        levels = product_tree([2, 3, 5])
        assert levels[0] == [2, 3, 5]
        assert levels[1] == [6, 5]
        assert levels[2] == [30]

    def test_empty_input(self):
        assert product_tree([]) == [[1]]

    def test_root_is_product(self):
        values = [3, 7, 11, 13, 17]
        assert product_tree(values)[-1][0] == math.prod(values)

    @given(moduli_lists)
    def test_root_matches_prod(self, values):
        assert tree_product(values) == math.prod(values)

    @given(moduli_lists)
    def test_level_sizes_halve(self, values):
        levels = product_tree(values)
        for below, above in zip(levels, levels[1:]):
            assert len(above) == (len(below) + 1) // 2


class TestRemainderTree:
    def test_matches_direct_mod(self):
        values = [11, 13, 17, 19]
        x = 123456789
        levels = product_tree(values)
        assert remainder_tree(x, levels) == [x % v for v in values]

    @given(moduli_lists, st.integers(min_value=0, max_value=2**256))
    @settings(max_examples=60)
    def test_property_matches_direct_mod(self, values, x):
        levels = product_tree(values)
        assert remainder_tree(x, levels) == [x % v for v in values]


class TestRemainderTreeSquared:
    def test_matches_direct(self):
        values = [11, 13, 17, 19, 23]
        product = math.prod(values)
        levels = product_tree(values)
        assert remainder_tree_squared(levels) == [product % (v * v) for v in values]

    @given(moduli_lists)
    @settings(max_examples=60)
    def test_property(self, values):
        product = math.prod(values)
        levels = product_tree(values)
        assert remainder_tree_squared(levels) == [
            product % (v * v) for v in values
        ]

    def test_quotient_is_product_of_others_mod_n(self):
        # The batch-GCD invariant: (P mod N^2)/N == (P/N) mod N when N | P.
        values = [101, 103, 107]
        product = math.prod(values)
        remainders = remainder_tree_squared(product_tree(values))
        for n, z in zip(values, remainders):
            assert z % n == 0
            assert (z // n) % n == (product // n) % n


class TestRemaindersModSquares:
    def test_empty(self):
        assert remainders_mod_squares(5, []) == []

    def test_matches_direct(self):
        values = [7, 9, 11]
        x = 10**9 + 7
        assert remainders_mod_squares(x, values) == [x % (v * v) for v in values]

    def test_value_larger_than_root_squared(self):
        # Deduplicated onto remainder_tree_squared(value=...): an external
        # value first reduces modulo root**2, then pushes down normally.
        values = [101, 103, 107]
        x = math.prod(values) ** 3 + 12345
        assert remainders_mod_squares(x, values) == [x % (v * v) for v in values]

    @given(moduli_lists, st.integers(min_value=0, max_value=2**200))
    @settings(max_examples=40)
    def test_property_matches_direct(self, values, x):
        assert remainders_mod_squares(x, values) == [
            x % (v * v) for v in values
        ]


class TestNewtonReciprocal:
    def test_small_operand_is_exact(self):
        m = (1 << 1000) + 12345
        t = m.bit_length()
        assert newton_reciprocal(m) == (1 << (2 * t)) // m

    def test_large_operand_underapproximates_tightly(self):
        rng = random.Random(7)
        for bits in (NEWTON_DIRECT_BITS + 1, 5000, 16384):
            m = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
            t = m.bit_length()
            mu = newton_reciprocal(m)
            exact = (1 << (2 * t)) // m
            assert 0 <= exact - mu < 1 << 16  # short of floor by units only

    def test_power_of_two_edge(self):
        m = 1 << 8192
        mu = newton_reciprocal(m)
        exact = (1 << (2 * m.bit_length())) // m
        assert 0 <= exact - mu < 1 << 16


class TestBarrettReduce:
    def test_matches_mod_exactly(self):
        rng = random.Random(11)
        for _ in range(20):
            m = rng.getrandbits(7000) | (1 << 6999) | 1
            t = m.bit_length()
            mu = newton_reciprocal(m)
            x = rng.getrandbits(2 * t - rng.randrange(0, 64))
            assert barrett_reduce(x, m, mu, t) == x % m

    def test_exact_even_with_sloppy_mu(self):
        # The correction step makes the reduction exact for any
        # under-approximated reciprocal, however bad.
        m = (1 << 4099) + 977
        t = m.bit_length()
        mu = newton_reciprocal(m) - 3
        x = (m - 1) * (m - 1)
        assert barrett_reduce(x, m, mu, t) == x % m

    def test_small_x(self):
        m = (1 << 4099) + 977
        t = m.bit_length()
        mu = newton_reciprocal(m)
        assert barrett_reduce(42, m, mu, t) == 42


class TestPreparedRemainderTree:
    def _tree(self, leaf_bits, count, seed=3):
        rng = random.Random(seed)
        leaves = [
            rng.getrandbits(leaf_bits) | (1 << (leaf_bits - 1)) | 1
            for _ in range(count)
        ]
        return leaves, product_tree(leaves)

    def test_none_reciprocals_is_plain_remainder_tree(self):
        leaves, levels = self._tree(64, 8)
        x = 2**512 + 9
        assert remainder_tree_prepared(x, levels) == remainder_tree(x, levels)

    def test_matches_plain_with_reciprocals(self):
        # min_bits low enough that internal nodes get real reciprocals
        # (roots well past NEWTON_DIRECT_BITS exercise the Newton path).
        leaves, levels = self._tree(512, 16)
        recips = prepare_reciprocals(levels, min_bits=256)
        x = tree_product(self._tree(512, 16, seed=99)[0])
        assert remainder_tree_prepared(x, levels, recips) == remainder_tree(
            x, levels
        )

    def test_small_nodes_skipped_by_default(self):
        leaves, levels = self._tree(64, 8)
        recips = prepare_reciprocals(levels)  # default BARRETT_MIN_BITS
        assert all(r is None for level in recips for r in level)
        x = 2**700 + 123
        assert remainder_tree_prepared(x, levels, recips) == remainder_tree(
            x, levels
        )

    def test_wide_value_falls_back_to_plain_mod(self):
        # x far beyond 4**t at the root: the Barrett precondition fails and
        # the prepared tree must fall back without losing exactness.
        leaves, levels = self._tree(512, 4)
        recips = prepare_reciprocals(levels, min_bits=256)
        x = tree_product(leaves) ** 3 + 7
        assert remainder_tree_prepared(x, levels, recips) == remainder_tree(
            x, levels
        )

    def test_default_cutoff_above_karatsuba(self):
        assert BARRETT_MIN_BITS >= 2048
