"""Tests for product/remainder trees — the heart of batch GCD."""

import math

from hypothesis import given, settings, strategies as st

from repro.numt.trees import (
    product_tree,
    remainder_tree,
    remainder_tree_squared,
    remainders_mod_squares,
    tree_product,
)

moduli_lists = st.lists(st.integers(min_value=2, max_value=2**64), min_size=1, max_size=40)


class TestProductTree:
    def test_single_value(self):
        assert product_tree([7]) == [[7]]

    def test_two_values(self):
        assert product_tree([3, 5]) == [[3, 5], [15]]

    def test_odd_count_carries_last(self):
        levels = product_tree([2, 3, 5])
        assert levels[0] == [2, 3, 5]
        assert levels[1] == [6, 5]
        assert levels[2] == [30]

    def test_empty_input(self):
        assert product_tree([]) == [[1]]

    def test_root_is_product(self):
        values = [3, 7, 11, 13, 17]
        assert product_tree(values)[-1][0] == math.prod(values)

    @given(moduli_lists)
    def test_root_matches_prod(self, values):
        assert tree_product(values) == math.prod(values)

    @given(moduli_lists)
    def test_level_sizes_halve(self, values):
        levels = product_tree(values)
        for below, above in zip(levels, levels[1:]):
            assert len(above) == (len(below) + 1) // 2


class TestRemainderTree:
    def test_matches_direct_mod(self):
        values = [11, 13, 17, 19]
        x = 123456789
        levels = product_tree(values)
        assert remainder_tree(x, levels) == [x % v for v in values]

    @given(moduli_lists, st.integers(min_value=0, max_value=2**256))
    @settings(max_examples=60)
    def test_property_matches_direct_mod(self, values, x):
        levels = product_tree(values)
        assert remainder_tree(x, levels) == [x % v for v in values]


class TestRemainderTreeSquared:
    def test_matches_direct(self):
        values = [11, 13, 17, 19, 23]
        product = math.prod(values)
        levels = product_tree(values)
        assert remainder_tree_squared(levels) == [product % (v * v) for v in values]

    @given(moduli_lists)
    @settings(max_examples=60)
    def test_property(self, values):
        product = math.prod(values)
        levels = product_tree(values)
        assert remainder_tree_squared(levels) == [
            product % (v * v) for v in values
        ]

    def test_quotient_is_product_of_others_mod_n(self):
        # The batch-GCD invariant: (P mod N^2)/N == (P/N) mod N when N | P.
        values = [101, 103, 107]
        product = math.prod(values)
        remainders = remainder_tree_squared(product_tree(values))
        for n, z in zip(values, remainders):
            assert z % n == 0
            assert (z // n) % n == (product // n) % n


class TestRemaindersModSquares:
    def test_empty(self):
        assert remainders_mod_squares(5, []) == []

    def test_matches_direct(self):
        values = [7, 9, 11]
        x = 10**9 + 7
        assert remainders_mod_squares(x, values) == [x % (v * v) for v in values]
