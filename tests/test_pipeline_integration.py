"""End-to-end integration tests over the shared tiny study."""


from repro.pipeline import build_world, run_study
from repro.studyconfig import StudyConfig
from repro.timeline import HEARTBLEED, Month


class TestStudyStructure:
    def test_snapshot_count_matches_schedule(self, tiny_study):
        # 2 EFF + 1 P&Q + 20 Ecosystem + 17 Rapid7 + 11 Censys.
        assert len(tiny_study.snapshots) == 51

    def test_snapshots_ordered(self, tiny_study):
        months = [s.month for s in tiny_study.snapshots]
        assert months == sorted(months)

    def test_corpus_is_deduplicated(self, tiny_study):
        moduli = tiny_study.batch_result.moduli
        assert len(moduli) == len(set(moduli))

    def test_cluster_stats_present(self, tiny_study):
        stats = tiny_study.cluster_stats
        assert stats is not None
        assert stats.k == tiny_study.config.batchgcd_k
        assert stats.tasks == stats.k**2

    def test_timings_recorded(self, tiny_study):
        for phase in ("world_and_scans", "protocols", "batch_gcd",
                      "fingerprint"):
            assert tiny_study.timings[phase] > 0


class TestHeadlineResults:
    def test_vulnerable_moduli_found(self, tiny_study):
        assert len(tiny_study.fingerprints.factored_clean) > 50

    def test_no_false_positives(self, tiny_study):
        assert set(tiny_study.fingerprints.factored_clean) <= tiny_study.weak_moduli_truth

    def test_vulnerable_hosts_rise_then_exist_at_end(self, tiny_study):
        vuln = tiny_study.series.overall.vulnerable()
        assert vuln[-1] > 0
        assert max(vuln) > vuln[0]

    def test_most_vulnerable_devices_only_rsa_kex(self, tiny_study):
        # Paper: 74% of vulnerable devices in 4/2016 support only RSA kex.
        vulnerable = tiny_study.vulnerable_moduli()
        last = tiny_study.snapshots[-1]
        total = only_rsa = 0
        for _ip, cert_id in last.records():
            entry = tiny_study.store[cert_id]
            if entry.certificate.public_key.n in vulnerable:
                total += entry.weight
                if entry.only_rsa_kex:
                    only_rsa += entry.weight
        assert total > 0
        assert 0.4 < only_rsa / total <= 1.0

    def test_newly_vulnerable_vendors_absent_before_2014(self, tiny_study):
        # Sangfor's ~15 paper-scale vulnerable hosts round away at tiny
        # scale, so only the two robustly-visible ramps are asserted here.
        for vendor in ("Huawei", "Schmid Telecom"):
            series = tiny_study.series.vendor(vendor)
            early = [p for p in series.points if p.month < Month(2014, 1)]
            late = [p for p in series.points if p.month >= Month(2015, 6)]
            if not late:
                continue
            assert sum(p.vulnerable for p in early) == 0, vendor
            assert sum(p.vulnerable for p in late) > 0, vendor

    def test_juniper_vulnerable_rises_after_advisory(self, tiny_study):
        # The paper's headline anti-result: the advisory (4/2012) did not
        # stop the vulnerable population from rising into 2014.
        series = tiny_study.series.vendor("Juniper")
        at_advisory = [p for p in series.points if p.month <= Month(2012, 7)]
        pre_heartbleed = [
            p for p in series.points
            if Month(2013, 6) <= p.month < HEARTBLEED
        ]
        assert max(p.vulnerable for p in pre_heartbleed) > max(
            p.vulnerable for p in at_advisory
        )


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = StudyConfig.tiny().with_(
            end=Month(2011, 6), bit_error_rate=0.0, rimon_hosts=2
        )
        a = build_world(config)
        b = build_world(config)
        for month in Month.range(config.start, config.end):
            a.step(month)
            b.step(month)
        truth_a = a.weak_moduli_truth()
        truth_b = b.weak_moduli_truth()
        assert truth_a == truth_b

    def test_different_seed_different_world(self):
        base = StudyConfig.tiny().with_(end=Month(2011, 6))
        a = build_world(base)
        b = build_world(base.with_(seed=999))
        for month in Month.range(base.start, base.end):
            a.step(month)
            b.step(month)
        assert a.weak_moduli_truth() != b.weak_moduli_truth()


class TestShortWindowStudy:
    def test_study_on_sub_window_runs(self):
        config = StudyConfig.tiny().with_(
            start=Month(2012, 6), end=Month(2013, 6), seed=77,
        )
        result = run_study(config)
        assert len(result.snapshots) == 13
        assert result.table1.total_distinct_moduli_raw > 0
