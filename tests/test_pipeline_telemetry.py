"""Integration tests: the pipeline's telemetry instrumentation end to end.

These assert on the shared session-scoped tiny study (which runs with a
recording registry — see ``conftest.py``), so they cost no extra pipeline
runs.
"""

import pytest

from repro.pipeline import STAGE_SPANS
from repro.reporting.export import study_to_json
from repro.telemetry import validate_report


@pytest.fixture(scope="module")
def report(tiny_study):
    assert tiny_study.telemetry is not None
    return tiny_study.telemetry


class TestStageSpans:
    def test_six_top_level_stage_spans_in_order(self, report):
        assert report.span_names() == list(STAGE_SPANS)
        assert len(STAGE_SPANS) == 6

    def test_stage_walls_are_positive(self, report):
        for span in report.spans:
            assert span.wall_seconds > 0, span.name

    def test_stage_walls_consistent_with_timings(self, tiny_study, report):
        # The legacy timings dict and the span tree measure the same run.
        walls = {s.name: s.wall_seconds for s in report.spans}
        combined = walls["world_build"] + walls["timeline_walk"]
        assert combined == pytest.approx(
            tiny_study.timings["world_and_scans"], rel=0.25
        )
        assert walls["batch_gcd"] == pytest.approx(
            tiny_study.timings["batch_gcd"], rel=0.25
        )

    def test_world_build_annotated_with_config(self, tiny_study, report):
        attrs = report.find_span("world_build").attrs
        assert attrs["seed"] == tiny_study.config.seed
        assert attrs["scale"] == tiny_study.config.scale

    def test_timeline_walk_annotated_with_snapshots(self, tiny_study, report):
        attrs = report.find_span("timeline_walk").attrs
        assert attrs["snapshots"] == len(tiny_study.snapshots)


class TestBatchGcdSpans:
    def test_task_spans_merged_from_workers(self, tiny_study, report):
        stage = report.find_span("batch_gcd")
        tasks = [c for c in stage.children if c.name == "batch_gcd.task"]
        assert len(tasks) == tiny_study.cluster_stats.tasks

    def test_task_spans_carry_operand_sizes(self, report):
        task = report.find_span("batch_gcd.task")
        assert task.attrs["product_bits"] > 0
        assert task.attrs["subset_size"] > 0
        # Streaming tasks reuse the parent-built subset tree, so the only
        # per-task substage is the remainder pass — no product_tree child.
        assert {c.name for c in task.children} == {
            "batch_gcd.task.remainder_tree",
        }

    def test_subset_trees_built_once_per_subset(self, tiny_study, report):
        stage = report.find_span("batch_gcd")
        products = next(
            c for c in stage.children if c.name == "batch_gcd.products"
        )
        builds = [
            c for c in products.children if c.name == "batch_gcd.subset_tree"
        ]
        assert len(builds) == tiny_study.cluster_stats.k
        assert all(b.attrs["root_bits"] > 0 for b in builds)

    def test_task_timer_aggregates_every_task(self, tiny_study, report):
        stats = report.timers["batch_gcd.task"]
        assert stats.count == tiny_study.cluster_stats.tasks
        assert stats.max_wall_seconds >= stats.min_wall_seconds > 0

    def test_products_span_and_queue_gauge(self, report):
        assert report.find_span("batch_gcd.products") is not None
        assert report.gauges["batch_gcd.queue_depth"] == 0
        assert report.gauges["batch_gcd.max_product_bits"] > 0


class TestScanAndFingerprintInstruments:
    def test_scan_counters(self, tiny_study, report):
        assert report.counters["scans.snapshots"] == len(tiny_study.snapshots)
        assert report.counters["scans.records"] > 0
        assert report.counters["scans.bit_errors"] > 0

    def test_per_era_counters_cover_all_sources(self, tiny_study, report):
        eras = {s.source for s in tiny_study.snapshots}
        for era in eras:
            assert report.counters[f"scans.era.{era}.records"] > 0

    def test_chain_reconstruction_counted(self, report):
        assert report.counters["scans.chain_reconstruction.removed"] > 0

    def test_fingerprint_substage_spans(self, report):
        stage = report.find_span("fingerprint")
        names = [c.name for c in stage.children]
        assert names == [
            "fingerprint.rules",
            "fingerprint.triage",
            "fingerprint.cliques",
            "fingerprint.extrapolate",
            "fingerprint.openssl",
        ]

    def test_fingerprint_rule_hits_match_report(self, tiny_study, report):
        for rule, hits in tiny_study.fingerprints.rule_counts.items():
            assert report.counters[f"fingerprint.rule.{rule}"] == hits
        assert report.counters["fingerprint.factored_clean"] == len(
            tiny_study.fingerprints.factored_clean
        )


class TestReportEdges:
    def test_report_validates_against_schema(self, report):
        assert validate_report(report.to_dict()) == []

    def test_study_json_embeds_telemetry(self, tiny_study):
        import json

        payload = json.loads(study_to_json(tiny_study))
        assert payload["telemetry"]["enabled"] is True
        names = [s["name"] for s in payload["telemetry"]["spans"]]
        assert names == list(STAGE_SPANS)

    def test_uninstrumented_run_attaches_no_report(self):
        # The default active registry is disabled; run_study must not
        # fabricate a report (and must not slow down to make one).
        from repro.pipeline import StudyResult

        assert StudyResult.__dataclass_fields__["telemetry"].default is None
