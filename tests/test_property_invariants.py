"""Cross-cutting property-based tests on core invariants (hypothesis)."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.batchgcd import batch_gcd
from repro.core.clustered import clustered_batch_gcd
from repro.core.naive import naive_pairwise_gcd
from repro.crypto.certs import DistinguishedName
from repro.entropy.pool import EntropyPool
from repro.numt.trees import product_tree, remainder_tree
from repro.timeline import Month


class TestBatchGcdInvariants:
    @given(
        st.lists(st.integers(min_value=2, max_value=2**48), min_size=1, max_size=30)
    )
    @settings(max_examples=60, deadline=None)
    def test_divisors_always_divide(self, moduli):
        result = batch_gcd(moduli)
        for n, d in zip(result.moduli, result.divisors):
            assert d >= 1
            assert n % d == 0

    @given(
        st.lists(st.integers(min_value=2, max_value=2**40), min_size=2, max_size=20)
    )
    @settings(max_examples=40, deadline=None)
    def test_adding_a_coprime_modulus_never_unflags(self, moduli):
        # Growing the corpus can only reveal more sharing, never less.
        before = batch_gcd(moduli)
        extra = 2**61 - 1  # a prime far outside the input range
        after = batch_gcd(moduli + [extra])
        for i in range(len(moduli)):
            if before.divisors[i] > 1:
                assert after.divisors[i] > 1

    @given(
        st.lists(st.integers(min_value=2, max_value=2**40), min_size=2, max_size=16),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariance(self, moduli, rng):
        result = dict(zip(moduli, batch_gcd(moduli).divisors))
        shuffled = list(moduli)
        rng.shuffle(shuffled)
        reshuffled = dict(zip(shuffled, batch_gcd(shuffled).divisors))
        # Per-modulus divisors are order-independent (duplicates collapse
        # to the same key, which is fine: equal values).
        assert result == reshuffled

    @given(
        st.lists(st.integers(min_value=2, max_value=2**32), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_three_engines_agree_on_flagging(self, moduli, k):
        flags = [d > 1 for d in batch_gcd(moduli).divisors]
        assert [d > 1 for d in naive_pairwise_gcd(moduli).divisors] == flags
        assert [d > 1 for d in clustered_batch_gcd(moduli, k=k).divisors] == flags


class TestTreeInvariants:
    @given(
        st.lists(st.integers(min_value=1, max_value=2**64), min_size=1, max_size=50),
        st.integers(min_value=0, max_value=2**128),
    )
    @settings(max_examples=60)
    def test_remainder_tree_equals_direct_reduction(self, values, x):
        levels = product_tree(values)
        assert remainder_tree(x, levels) == [x % v for v in values]

    @given(st.lists(st.integers(min_value=1, max_value=2**32), min_size=1, max_size=64))
    def test_product_tree_root(self, values):
        assert product_tree(values)[-1][0] == math.prod(values)


class TestEntropyPoolInvariants:
    @given(st.lists(st.binary(min_size=0, max_size=16), max_size=8))
    @settings(max_examples=50)
    def test_identical_mix_sequences_identical_streams(self, inputs):
        a, b = EntropyPool(), EntropyPool()
        for data in inputs:
            a.mix(data)
            b.mix(data)
        assert a.read(48) == b.read(48)

    @given(
        st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=6),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=50)
    def test_any_extra_mix_diverges(self, inputs, position):
        a, b = EntropyPool(), EntropyPool()
        for data in inputs:
            a.mix(data)
            b.mix(data)
        b.mix(b"\x00" + bytes([position]))
        assert a.read(32) != b.read(32)


class TestDnAndMonthRoundtrips:
    dn_text = st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=127
        ),
        min_size=1,
        max_size=12,
    )

    @given(dn_text, dn_text, dn_text)
    @settings(max_examples=50)
    def test_dn_parse_roundtrip(self, o, ou, cn):
        dn = DistinguishedName(O=o, OU=ou, CN=cn)
        assert DistinguishedName.parse(dn.rfc4514()) == dn

    @given(st.integers(min_value=1, max_value=9999), st.integers(min_value=1, max_value=12))
    def test_month_str_parse_roundtrip(self, year, month):
        m = Month(year, month)
        assert Month.parse(str(m)) == m
