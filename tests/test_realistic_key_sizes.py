"""The algorithms at realistic key sizes (the paper's devices used 1024+).

Most tests run at small simulation sizes for speed; these exercise the
same code paths at the moduli sizes real devices served, so nothing in
the stack silently depends on smallness.
"""

import math
import random

import pytest

from repro.core.batchgcd import batch_gcd
from repro.core.clustered import clustered_batch_gcd
from repro.crypto.primes import generate_prime, is_openssl_style_prime
from repro.crypto.rsa import generate_rsa_keypair, keypair_from_primes, recover_private_key


@pytest.fixture(scope="module")
def primes_512():
    rng = random.Random(1024)
    return [generate_prime(512, rng) for _ in range(5)]


class TestRealisticSizes:
    def test_1024_bit_weak_corpus_factors(self, primes_512):
        shared, q1, q2, p3, q3 = primes_512
        weak = [shared * q1, shared * q2]
        healthy = [p3 * q3]
        result = batch_gcd(weak + healthy)
        factored = result.resolve()
        assert set(factored) == set(weak)
        for n in weak:
            assert shared in (factored[n].p, factored[n].q)
            assert factored[n].modulus.bit_length() >= 1023

    def test_clustered_matches_at_1024_bits(self, primes_512):
        shared, q1, q2, p3, q3 = primes_512
        corpus = [shared * q1, shared * q2, p3 * q3]
        assert (
            clustered_batch_gcd(corpus, k=2).divisors
            == batch_gcd(corpus).divisors
        )

    def test_1024_bit_keypair_signs_and_recovers(self, primes_512):
        _shared, _q1, _q2, p, q = primes_512
        pair = keypair_from_primes(p, q)
        signature = pair.private.sign(b"firmware image")
        assert pair.public.verify(b"firmware image", signature)
        recovered = recover_private_key(pair.public.n, pair.public.e, p)
        assert recovered.d == pair.private.d

    def test_full_keygen_at_1024_bits(self):
        pair = generate_rsa_keypair(1024, random.Random(2048))
        assert pair.public.n.bit_length() == 1024
        message = 0xFEEDFACE
        assert pair.private.decrypt(pair.public.encrypt(message)) == message

    def test_openssl_fingerprint_at_512_bit_primes(self, primes_512):
        # The fingerprint predicate runs over the full 2048-prime table at
        # the size Mironov's 7.5% estimate was stated for.
        count = sum(1 for p in primes_512 if is_openssl_style_prime(p))
        assert 0 <= count <= len(primes_512)  # exercises the full table

    def test_gcd_cost_is_trivial_at_1024_bits(self, primes_512):
        # Paper §2.3: computing gcd and dividing "can be performed in less
        # than one second on a standard modern laptop".
        import time

        shared, q1, q2, *_ = primes_512
        n1, n2 = shared * q1, shared * q2
        started = time.perf_counter()
        g = math.gcd(n1, n2)
        assert g == shared
        assert n1 // g == q1
        assert time.perf_counter() - started < 1.0
