"""Tests for text rendering of tables, charts, and study reports."""

import pytest

from repro.reporting.study import (
    render_figure1,
    render_figure7,
    render_summary,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_vendor_figure,
)
from repro.reporting.text import format_count, render_series_chart, render_table


class TestFormatCount:
    def test_small_integers(self):
        assert format_count(0) == "0"
        assert format_count(999) == "999"
        assert format_count(12_345) == "12,345"

    def test_hundreds_of_thousands(self):
        assert format_count(313_330) == "313K"

    def test_millions(self):
        assert format_count(1_441_437) == "1.44M"
        assert format_count(81_228_736) == "81.2M"

    def test_fractional(self):
        assert format_count(12.5) == "12.5"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["A", "Header"], [["x", "1"], ["longer", "22"]])
        lines = out.splitlines()
        assert len(lines) == 4
        # All rows equal width.
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_title(self):
        out = render_table(["A"], [["1"]], title="My Table")
        assert out.splitlines()[0] == "My Table"


class TestRenderSeriesChart:
    def test_basic_chart(self):
        out = render_series_chart(
            ["a", "b", "c", "d"], [0, 5, 10, 5], title="T", width=20, height=5
        )
        assert "T" in out
        assert "*" in out
        assert "10" in out

    def test_empty_series(self):
        out = render_series_chart([], [], title="E")
        assert "(no data)" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_series_chart(["a"], [1, 2])

    def test_constant_series(self):
        out = render_series_chart(["a", "b"], [5, 5], width=10, height=4)
        assert "*" in out


class TestStudyRenderers:
    @pytest.mark.parametrize(
        "renderer, marker",
        [
            (render_table1, "Table 1"),
            (render_table2, "Table 2"),
            (render_table3, "Table 3"),
            (render_table4, "Table 4"),
            (render_table5, "Table 5"),
            (render_figure1, "Figure 1"),
            (render_figure7, "Figure 7"),
        ],
    )
    def test_renders_nonempty(self, tiny_study, renderer, marker):
        out = renderer(tiny_study)
        assert marker in out
        assert len(out.splitlines()) >= 3

    def test_vendor_figure(self, tiny_study):
        out = render_vendor_figure(tiny_study, "Juniper", "Figure 3")
        assert "Figure 3: Juniper" in out
        assert "total hosts" in out
        assert "vulnerable hosts" in out

    def test_vendor_figure_unknown_vendor(self, tiny_study):
        out = render_vendor_figure(tiny_study, "Nobody Inc", "Figure X")
        assert "no observations" in out

    def test_summary_mentions_key_stats(self, tiny_study):
        out = render_summary(tiny_study)
        assert "Batch GCD" in out
        assert "bit errors" in out
        assert "key substitutions" in out
