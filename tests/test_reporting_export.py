"""Tests for CSV/JSON exports."""

import csv
import io
import json

from repro.reporting.export import (
    global_series_to_csv,
    series_to_csv,
    study_to_json,
)


class TestSeriesCsv:
    def test_vendor_series_roundtrip(self, tiny_study):
        series = tiny_study.series.vendor("Juniper")
        text = series_to_csv(series)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(series.points)
        assert rows[0]["month"] == str(series.points[0].month)
        assert float(rows[0]["total"]) == series.points[0].total

    def test_global_series_long_format(self, tiny_study):
        text = global_series_to_csv(tiny_study.series)
        rows = list(csv.DictReader(io.StringIO(text)))
        vendors = {row["vendor"] for row in rows}
        assert "(all)" in vendors
        assert "Juniper" in vendors
        # Every row has a parsable month and numeric counts.
        for row in rows[:50]:
            assert row["month"].count("-") == 1
            float(row["total"])
            float(row["vulnerable"])


class TestStudyJson:
    def test_valid_json_with_headline_fields(self, tiny_study):
        payload = json.loads(study_to_json(tiny_study))
        assert payload["config"]["seed"] == tiny_study.config.seed
        assert payload["table1"]["vulnerable_moduli"] > 0
        assert {row["protocol"] for row in payload["table4"]} == {
            "HTTPS", "SSH", "POP3S", "IMAPS", "SMTPS",
        }
        assert "Juniper" in payload["table5"]["do_not_satisfy"]
        assert "Juniper" in payload["series"]
        assert "exposure" in payload

    def test_series_arrays_aligned(self, tiny_study):
        payload = json.loads(study_to_json(tiny_study, indent=None))
        for vendor, series in payload["series"].items():
            assert len(series["months"]) == len(series["total"]), vendor
            assert len(series["months"]) == len(series["vulnerable"]), vendor

    def test_transitions_exported(self, tiny_study):
        payload = json.loads(study_to_json(tiny_study))
        juniper = payload["transitions"]["Juniper"]
        assert juniper["ips_observed"] > 0
