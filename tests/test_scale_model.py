"""Tests for the scale model: per-model divisors at the full preset."""

from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.models import KeygenKind
from repro.devices.population import resolve_divisor
from repro.studyconfig import StudyConfig


class TestFullPresetDivisors:
    def setup_method(self):
        self.limits = StudyConfig.full().device_limits
        self.divisors = {
            model.model_id: resolve_divisor(model, self.limits)
            for model in DEVICE_CATALOG
        }

    def peak(self, model):
        return max(v for _, v in model.schedule.points)

    def test_simulated_peaks_bounded(self):
        # No fleet exceeds the tractability cap by more than rounding.
        for model in DEVICE_CATALOG:
            sim_peak = self.peak(model) / self.divisors[model.model_id]
            assert sim_peak <= self.limits.max_total_sim * 1.3, model.model_id

    def test_major_vulnerable_fleets_visible(self):
        # Fleets whose paper-scale vulnerable population is large must keep
        # enough weak units to show their figure's shape.
        for model in DEVICE_CATALOG:
            spec = model.keygen
            if spec.kind is KeygenKind.HEALTHY:
                continue
            weak_peak = self.peak(model) * spec.vulnerable_fraction
            if weak_peak < 500:  # below the documented resolution floor
                continue
            sim_weak = weak_peak / self.divisors[model.model_id]
            assert sim_weak >= 5, model.model_id

    def test_total_simulation_size_tractable(self):
        # The sum of simulated peaks bounds memory/CPU for the flagship run.
        total = sum(
            self.peak(model) / self.divisors[model.model_id]
            for model in DEVICE_CATALOG
        )
        assert total < 60_000

    def test_weights_recover_paper_magnitudes(self):
        # Weighted peak ~= paper peak for every model (divisor rounding).
        for model in DEVICE_CATALOG:
            divisor = self.divisors[model.model_id]
            paper_peak = self.peak(model)
            weighted = round(paper_peak / divisor) * divisor
            assert abs(weighted - paper_peak) <= divisor, model.model_id
