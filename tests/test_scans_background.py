"""Tests for the background web ecosystem and CA pool."""

import random

from repro.devices.population import IpAllocator
from repro.entropy.keygen import WeakKeyFactory
from repro.scans.background import (
    BACKGROUND_MODEL,
    CA_SIGNED_FRACTION,
    build_background_population,
    build_ca_pool,
)
from repro.timeline import STUDY_END, STUDY_START


class TestCaPool:
    def test_pool_size_and_flags(self):
        pool = build_ca_pool(random.Random(1), count=5, key_bits=96)
        assert len(pool) == 5
        for cert, key in pool:
            assert cert.is_ca
            assert cert.is_self_signed
            assert cert.verify_signature()
            assert key.n == cert.public_key.n

    def test_distinct_subjects(self):
        pool = build_ca_pool(random.Random(1), count=8, key_bits=96)
        subjects = {cert.subject.rfc4514() for cert, _ in pool}
        assert len(subjects) == 8


class TestBackgroundModel:
    def test_growth_matches_figure1(self):
        start = BACKGROUND_MODEL.schedule.target(STUDY_START, 1)
        end = BACKGROUND_MODEL.schedule.target(STUDY_END, 1)
        # Figure 1 / Table 3: ~11M -> ~38M total hosts; the background is
        # that minus the device fleets.
        assert 8_000_000 < start < 12_000_000
        assert 33_000_000 < end < 39_000_000

    def test_population_mixes_ca_and_self_signed(self, small_openssl_table):
        factory = WeakKeyFactory(seed=2, prime_bits=48, openssl_table=small_openssl_table)
        ca_pool = build_ca_pool(random.Random(3), count=4, key_bits=96)
        population = build_background_population(
            scale=100_000,
            factory=factory,
            allocator=IpAllocator(random.Random(4)),
            rng=random.Random(5),
            ca_pool=ca_pool,
        )
        population.step(STUDY_START)
        assert population.online_count() > 50
        ca_signed = sum(1 for d in population.online if not d.certificate.is_self_signed)
        fraction = ca_signed / population.online_count()
        assert abs(fraction - CA_SIGNED_FRACTION) < 0.2

    def test_background_is_healthy(self, small_openssl_table):
        factory = WeakKeyFactory(seed=2, prime_bits=48, openssl_table=small_openssl_table)
        population = build_background_population(
            scale=200_000,
            factory=factory,
            allocator=IpAllocator(random.Random(4)),
            rng=random.Random(5),
            ca_pool=build_ca_pool(random.Random(3), count=2, key_bits=96),
        )
        population.step(STUDY_START)
        assert population.weak_online_count() == 0
        assert not population.weak_moduli_emitted
