"""Tests for the SSH/mail protocol corpora (Table 4 inputs)."""

import math
import random

import pytest

from repro.core.batchgcd import batch_gcd
from repro.entropy.keygen import WeakKeyFactory
from repro.scans.protocols import PROTOCOL_SPECS, build_protocol_corpora
from repro.timeline import Month


@pytest.fixture(scope="module")
def corpora(small_openssl_table):
    factory = WeakKeyFactory(seed=21, prime_bits=48, openssl_table=small_openssl_table)
    return build_protocol_corpora(
        scale=25_000, factory=factory, rng=random.Random(6)
    )


class TestSpecs:
    def test_paper_scale_counts(self):
        by_name = {s.name: s for s in PROTOCOL_SPECS}
        assert by_name["SSH"].weak_hosts == 723
        assert by_name["SSH"].rsa_hosts == 6_257_106
        assert by_name["POP3S"].weak_hosts == 0
        assert by_name["IMAPS"].weak_hosts == 0
        assert by_name["SMTPS"].weak_hosts == 0

    def test_ssh_scan_date(self):
        by_name = {s.name: s for s in PROTOCOL_SPECS}
        assert by_name["SSH"].scan_month == Month(2015, 10)


class TestCorpora:
    def test_all_protocols_present(self, corpora):
        assert {c.protocol for c in corpora} == {"SSH", "POP3S", "IMAPS", "SMTPS"}

    def test_ssh_has_weak_subpopulation(self, corpora):
        weak = [c for c in corpora if c.protocol == "SSH" and c.weak_moduli_truth]
        assert len(weak) == 1
        assert weak[0].weight < 25_000  # simulated at a finer divisor

    def test_mail_protocols_have_no_weak_keys(self, corpora):
        for corpus in corpora:
            if corpus.protocol != "SSH":
                assert not corpus.weak_moduli_truth

    def test_historical_keys_included(self, corpora):
        healthy_ssh = [
            c for c in corpora if c.protocol == "SSH" and not c.weak_moduli_truth
        ][0]
        assert healthy_ssh.historical_moduli
        assert len(healthy_ssh.all_moduli()) == len(healthy_ssh.rsa_moduli) + len(
            healthy_ssh.historical_moduli
        )

    def test_batch_gcd_factors_only_ssh_weak_keys(self, corpora):
        moduli = []
        truth = set()
        for corpus in corpora:
            moduli.extend(corpus.all_moduli())
            truth |= corpus.weak_moduli_truth
        result = batch_gcd(moduli)
        flagged = set(result.vulnerable_moduli)
        assert flagged <= truth
        # Most of the weak SSH pool collides and factors.
        assert len(flagged) >= len(truth) * 0.5

    def test_healthy_keys_pairwise_coprime_sample(self, corpora):
        mail = [c for c in corpora if c.protocol == "IMAPS"][0]
        sample = mail.rsa_moduli[:30]
        for i, a in enumerate(sample):
            for b in sample[i + 1 :]:
                assert math.gcd(a, b) == 1
