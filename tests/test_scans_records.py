"""Tests for host records and the certificate store."""

import random
from datetime import date


from repro.crypto.certs import DistinguishedName, self_signed_certificate
from repro.crypto.rsa import generate_rsa_keypair
from repro.scans.records import CertificateStore, ScanSnapshot
from repro.timeline import Month


def make_cert(seed):
    keypair = generate_rsa_keypair(64, random.Random(seed))
    return self_signed_certificate(
        subject=DistinguishedName(CN=f"host-{seed}"),
        keypair=keypair,
        serial=seed,
        not_before=date(2012, 1, 1),
        not_after=date(2022, 1, 1),
    )


class TestCertificateStore:
    def test_interning_deduplicates(self):
        store = CertificateStore()
        cert = make_cert(1)
        a = store.intern(cert, weight=10)
        b = store.intern(cert, weight=99)  # later weight ignored
        assert a == b
        assert len(store) == 1
        assert store[a].weight == 10

    def test_distinct_certs_distinct_ids(self):
        store = CertificateStore()
        assert store.intern(make_cert(1), 1) != store.intern(make_cert(2), 1)

    def test_banner_and_kex_recorded(self):
        store = CertificateStore()
        cert_id = store.intern(make_cert(3), 5, banner="SnapGear", only_rsa_kex=True)
        entry = store[cert_id]
        assert entry.banner == "SnapGear"
        assert entry.only_rsa_kex

    def test_moduli_with_weights_takes_max(self):
        store = CertificateStore()
        cert = make_cert(4)
        other = make_cert(5)
        store.intern(cert, 10)
        store.intern(other, 20)
        weights = store.moduli_with_weights()
        assert weights[cert.public_key.n] == 10
        assert weights[other.public_key.n] == 20

    def test_entries_in_id_order(self):
        store = CertificateStore()
        ids = [store.intern(make_cert(s), 1) for s in range(5)]
        assert ids == list(range(5))


class TestScanSnapshot:
    def test_append_and_iterate(self):
        snapshot = ScanSnapshot("Censys", Month(2016, 4))
        snapshot.append(12345, 0)
        snapshot.append(67890, 1)
        assert snapshot.host_count == 2
        assert list(snapshot.records()) == [(12345, 0), (67890, 1)]

    def test_remove_indices(self):
        snapshot = ScanSnapshot("Rapid7", Month(2014, 6))
        for i in range(5):
            snapshot.append(i, i * 10)
        removed = snapshot.remove_indices({1, 3})
        assert removed == 2
        assert list(snapshot.records()) == [(0, 0), (2, 20), (4, 40)]

    def test_remove_empty_set(self):
        snapshot = ScanSnapshot("EFF", Month(2010, 7))
        snapshot.append(1, 1)
        assert snapshot.remove_indices(set()) == 0
        assert snapshot.host_count == 1
