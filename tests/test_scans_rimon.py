"""Tests for the Rimon interceptor in isolation."""

import random
from datetime import date

from repro.crypto.certs import DistinguishedName, self_signed_certificate
from repro.crypto.rsa import generate_rsa_keypair
from repro.scans.rimon import RimonInterceptor


def make_cert(seed):
    keypair = generate_rsa_keypair(96, random.Random(seed))
    return self_signed_certificate(
        subject=DistinguishedName(CN=f"10.1.2.{seed}"),
        keypair=keypair,
        serial=seed,
        not_before=date(2011, 1, 1),
        not_after=date(2021, 1, 1),
    )


class TestRimonInterceptor:
    def test_one_fixed_modulus_across_customers(self):
        interceptor = RimonInterceptor(random.Random(1), key_bits=96)
        swapped = [interceptor.intercept(make_cert(s)) for s in range(5)]
        assert {c.public_key.n for c in swapped} == {interceptor.modulus}

    def test_everything_but_key_preserved(self):
        interceptor = RimonInterceptor(random.Random(1), key_bits=96)
        original = make_cert(9)
        swapped = interceptor.intercept(original)
        assert swapped.subject == original.subject
        assert swapped.serial == original.serial
        assert swapped.not_before == original.not_before
        assert swapped.public_key.n != original.public_key.n
        # The paper noted the hash choice changed along with the key.
        assert swapped.signature_hash != original.signature_hash

    def test_interception_is_stable(self):
        interceptor = RimonInterceptor(random.Random(1), key_bits=96)
        cert = make_cert(4)
        assert (
            interceptor.intercept(cert).fingerprint()
            == interceptor.intercept(cert).fingerprint()
        )

    def test_substituted_certificates_do_not_verify(self):
        interceptor = RimonInterceptor(random.Random(1), key_bits=96)
        assert not interceptor.intercept(make_cert(2)).verify_signature()

    def test_interceptor_key_is_healthy(self):
        # The paper did not factor the 1024-bit Rimon key; ours is a proper
        # two-prime key too.
        interceptor = RimonInterceptor(random.Random(1), key_bits=96)
        private = interceptor.keypair.private
        assert private.p * private.q == interceptor.modulus
