"""Tests for the HTTPS scanner: coverage, artifacts, chain reconstruction."""

import random

import pytest

from repro.devices.models import (
    DeviceModel,
    KeygenKind,
    KeygenSpec,
    PopulationSchedule,
    SubjectStyle,
)
from repro.devices.population import IpAllocator, ModelPopulation
from repro.entropy.keygen import WeakKeyFactory
from repro.scans.background import build_ca_pool
from repro.scans.records import CertificateStore
from repro.scans.rimon import RimonInterceptor
from repro.scans.scanner import HttpsScanner, reconstruct_chains
from repro.scans.sources import ScanSource
from repro.timeline import Month


def make_source(coverage=1.0, intermediates=False):
    return ScanSource(
        name="TEST",
        first=Month(2012, 1),
        last=Month(2016, 1),
        coverage=coverage,
        includes_unchained_intermediates=intermediates,
    )


@pytest.fixture
def factory(small_openssl_table):
    return WeakKeyFactory(seed=17, prime_bits=48, openssl_table=small_openssl_table)


def make_population(factory, size=40, ca_pool=None, ca_fraction=0.0,
                    style=SubjectStyle.VENDOR_IN_O):
    # Sizes are in *simulated* units: the schedule is expressed at paper
    # scale (size * divisor) so the divisor-7 population holds `size` units.
    model = DeviceModel(
        model_id="scan-test",
        vendor="Juniper",
        subject_style=style,
        keygen=KeygenSpec(kind=KeygenKind.HEALTHY, profile_id="scan-test"),
        schedule=PopulationSchedule(points=((Month(2012, 1), size * 7),)),
    )
    population = ModelPopulation(
        model=model,
        divisor=7,
        factory=factory,
        allocator=IpAllocator(random.Random(8)),
        rng=random.Random(9),
        ca_pool=ca_pool,
        ca_fraction=ca_fraction,
    )
    population.step(Month(2012, 1))
    return population


class TestCoverage:
    def test_full_coverage_sees_everything(self, factory):
        population = make_population(factory)
        store = CertificateStore()
        scanner = HttpsScanner(store, random.Random(1))
        snapshot = scanner.scan(Month(2012, 2), make_source(1.0), [(population, False)])
        assert snapshot.host_count == population.online_count()

    def test_partial_coverage_misses_hosts(self, factory):
        population = make_population(factory, size=200)
        store = CertificateStore()
        scanner = HttpsScanner(store, random.Random(1))
        snapshot = scanner.scan(Month(2012, 2), make_source(0.6), [(population, False)])
        assert 0 < snapshot.host_count < population.online_count()
        assert abs(snapshot.host_count / population.online_count() - 0.6) < 0.2

    def test_weights_carried_from_divisor(self, factory):
        population = make_population(factory)
        store = CertificateStore()
        scanner = HttpsScanner(store, random.Random(1))
        scanner.scan(Month(2012, 2), make_source(), [(population, False)])
        assert all(e.weight == 7 for e in store.entries())


class TestBitErrors:
    def test_bit_errors_injected_at_rate(self, factory):
        population = make_population(factory, size=300)
        store = CertificateStore()
        scanner = HttpsScanner(store, random.Random(1), bit_error_rate=0.2)
        scanner.scan(Month(2012, 2), make_source(), [(population, False)])
        assert scanner.bit_error_records > 20

    def test_corrupted_modulus_one_bit_from_original(self, factory):
        population = make_population(factory, size=100)
        store = CertificateStore()
        scanner = HttpsScanner(store, random.Random(1), bit_error_rate=1.0)
        scanner.scan(Month(2012, 2), make_source(), [(population, False)])
        originals = {
            d.certificate.public_key.n for d in population.online
        }
        for entry in store.entries():
            n = entry.certificate.public_key.n
            assert n not in originals
            assert any((n ^ (1 << b)) in originals for b in range(n.bit_length() + 1))

    def test_corrupted_certificates_fail_verification(self, factory):
        population = make_population(factory, size=20)
        store = CertificateStore()
        scanner = HttpsScanner(store, random.Random(1), bit_error_rate=1.0)
        scanner.scan(Month(2012, 2), make_source(), [(population, False)])
        assert not any(e.certificate.verify_signature() for e in store.entries())


class TestInterception:
    def test_intercepted_population_serves_fixed_modulus(self, factory):
        population = make_population(factory, size=30)
        store = CertificateStore()
        interceptor = RimonInterceptor(random.Random(3), key_bits=96)
        scanner = HttpsScanner(store, random.Random(1), interceptor=interceptor)
        scanner.scan(Month(2012, 2), make_source(), [(population, True)])
        moduli = {e.certificate.public_key.n for e in store.entries()}
        assert moduli == {interceptor.modulus}
        # Subjects stay distinct: only the key was swapped.
        subjects = {e.certificate.subject.rfc4514() for e in store.entries()}
        assert len(subjects) > 1

    def test_unflagged_population_not_intercepted(self, factory):
        population = make_population(factory, size=10)
        store = CertificateStore()
        interceptor = RimonInterceptor(random.Random(3), key_bits=96)
        scanner = HttpsScanner(store, random.Random(1), interceptor=interceptor)
        scanner.scan(Month(2012, 2), make_source(), [(population, False)])
        assert interceptor.modulus not in {
            e.certificate.public_key.n for e in store.entries()
        }


class TestChainReconstruction:
    def test_rapid7_intermediates_emitted_then_stripped(self, factory):
        ca_pool = build_ca_pool(random.Random(4), count=3, key_bits=96)
        population = make_population(
            factory, size=100, ca_pool=ca_pool, ca_fraction=1.0
        )
        store = CertificateStore()
        scanner = HttpsScanner(store, random.Random(1), ca_pool=ca_pool)
        snapshot = scanner.scan(
            Month(2014, 6), make_source(intermediates=True), [(population, False)]
        )
        with_intermediates = snapshot.host_count
        assert with_intermediates > population.online_count()
        removed = reconstruct_chains(snapshot, store)
        assert removed == with_intermediates - population.online_count()
        # Only leaf certificates remain.
        remaining_ca = sum(
            1
            for _ip, cid in snapshot.records()
            if store[cid].certificate.is_ca
        )
        assert remaining_ca == 0

    def test_non_rapid7_sources_emit_no_intermediates(self, factory):
        ca_pool = build_ca_pool(random.Random(4), count=3, key_bits=96)
        population = make_population(
            factory, size=50, ca_pool=ca_pool, ca_fraction=1.0
        )
        store = CertificateStore()
        scanner = HttpsScanner(store, random.Random(1), ca_pool=ca_pool)
        snapshot = scanner.scan(
            Month(2013, 6), make_source(intermediates=False), [(population, False)]
        )
        assert snapshot.host_count == population.online_count()
