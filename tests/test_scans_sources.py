"""Tests for scan-source eras and the representative-scan schedule."""

from repro.scans.sources import SCAN_SOURCES, scan_months, source_for_month
from repro.timeline import STUDY_END, STUDY_START, Month


class TestSourceSchedule:
    def test_eff_months(self):
        assert source_for_month(Month(2010, 7)).name == "EFF"
        assert source_for_month(Month(2010, 12)).name == "EFF"
        # EFF only scanned twice; the months between have no data.
        assert source_for_month(Month(2010, 9)) is None

    def test_pq_single_scan(self):
        assert source_for_month(Month(2011, 10)).name == "P&Q"
        assert source_for_month(Month(2011, 9)) is None
        assert source_for_month(Month(2011, 11)) is None

    def test_ecosystem_era(self):
        assert source_for_month(Month(2012, 6)).name == "Ecosystem"
        assert source_for_month(Month(2014, 1)).name == "Ecosystem"

    def test_rapid7_era(self):
        assert source_for_month(Month(2014, 2)).name == "Rapid7"
        assert source_for_month(Month(2015, 6)).name == "Rapid7"

    def test_censys_era(self):
        assert source_for_month(Month(2015, 7)).name == "Censys"
        assert source_for_month(Month(2016, 5)).name == "Censys"

    def test_gap_before_ecosystem(self):
        assert source_for_month(Month(2012, 1)) is None

    def test_heartbleed_month_covered_by_rapid7(self):
        assert source_for_month(Month(2014, 4)).name == "Rapid7"


class TestScanMonths:
    def test_full_window(self):
        months = scan_months(STUDY_START, STUDY_END)
        # 2 EFF + 1 P&Q + 20 Ecosystem + 17 Rapid7 + 11 Censys = 51.
        assert len(months) == 51
        assert months[0] == (Month(2010, 7), SCAN_SOURCES[0])
        assert months[-1][0] == Month(2016, 5)

    def test_sources_in_era_order(self):
        names = [source.name for _m, source in scan_months(STUDY_START, STUDY_END)]
        order = {"EFF": 0, "P&Q": 1, "Ecosystem": 2, "Rapid7": 3, "Censys": 4}
        ranks = [order[n] for n in names]
        assert ranks == sorted(ranks)

    def test_only_rapid7_emits_intermediates(self):
        for source in SCAN_SOURCES:
            assert source.includes_unchained_intermediates == (
                source.name == "Rapid7"
            )

    def test_coverage_in_unit_interval(self):
        for source in SCAN_SOURCES:
            assert 0.5 < source.coverage <= 1.0

    def test_zmap_era_sees_more_than_nmap_era(self):
        by_name = {s.name: s for s in SCAN_SOURCES}
        assert by_name["Censys"].coverage > by_name["EFF"].coverage
