"""The service crash drill: SIGKILL the process mid-queue, restart, finish.

Mirrors ``tests/test_faults_chaos.py::TestKillAndResumeCli`` one layer
up: instead of killing the batch-GCD CLI, it kills the whole service
process — journal, claimed job, engine run and all — and asserts the
restarted process recovers the queue, re-runs the interrupted job, and
serves the same result an undisturbed run produces.
"""

import http.client
import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.core.clustered import ClusteredBatchGcd
from repro.crypto.primes import generate_prime


def _weak_corpus(seed=2016, size=6, bits=40):
    rng = random.Random(seed)
    shared = generate_prime(bits, rng)
    moduli = []
    for index in range(size):
        p = shared if index in (0, 3) else generate_prime(bits, rng)
        moduli.append(p * generate_prime(bits, rng))
    return moduli


CORPUS = _weak_corpus()


def _request(port, method, path, payload=None, timeout=10.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(
            method, path, body=None if payload is None else json.dumps(payload)
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class _Service:
    """One ``python -m repro.service`` child process."""

    def __init__(self, state_dir: Path, *extra_argv: str):
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("REPRO_FAULTS", None)
        env.pop("REPRO_SERVICE_API_KEYS", None)
        self.state_dir = state_dir
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service",
                "--state-dir", str(state_dir), "--port", "0", *extra_argv,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def wait_port(self, timeout=30.0) -> int:
        """Poll endpoint.json until it names *this* process and serves."""
        endpoint = self.state_dir / "endpoint.json"
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            assert self.process.poll() is None, "service process died at boot"
            try:
                info = json.loads(endpoint.read_text())
                if info["pid"] == self.process.pid:
                    status, _ = _request(info["port"], "GET", "/healthz", timeout=2.0)
                    if status == 200:
                        return info["port"]
            except (OSError, ValueError, KeyError):
                pass
            time.sleep(0.05)
        raise AssertionError("service never published a live endpoint")

    def sigkill(self):
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=30)

    def sigterm(self) -> int:
        self.process.send_signal(signal.SIGTERM)
        return self.process.wait(timeout=30)


class TestKillAndRestartService:
    def test_sigkill_mid_job_restart_resumes_and_completes(self, tmp_path):
        state_dir = tmp_path / "state"
        payload = {"moduli": [f"{n:x}" for n in CORPUS]}

        # Boot with a slow fault plan so the kill lands mid-engine-run.
        victim = _Service(state_dir, "--fault-plan", "slow:seconds=0.5")
        try:
            port = victim.wait_port()
            status, submitted = _request(port, "POST", "/v1/jobs", payload)
            assert status == 202, submitted
            job_id = submitted["job_id"]

            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                _, body = _request(port, "GET", f"/v1/jobs/{job_id}/status")
                if body["status"] == "running":
                    break
                assert body["status"] != "succeeded", "job finished before kill"
                time.sleep(0.02)
            assert body["status"] == "running", body
        finally:
            victim.sigkill()

        # Restart plain (no fault plan): replay must requeue the claimed
        # job with its crashed attempt counted, then finish it.
        revived = _Service(state_dir)
        try:
            port = revived.wait_port()
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                _, body = _request(port, "GET", f"/v1/jobs/{job_id}/status")
                if body["status"] in ("succeeded", "failed"):
                    break
                time.sleep(0.05)
            assert body["status"] == "succeeded", body
            assert body["attempts"] == 2  # crashed claim + the completing run

            status, result = _request(port, "GET", f"/v1/jobs/{job_id}/result")
            assert status == 200

            reference = ClusteredBatchGcd(k=4).run(CORPUS)
            assert result["divisors"] == [
                [index, f"{reference.divisors[index]:x}"]
                for index in reference.vulnerable_indices
            ]
            assert {0, 3} <= {index for index, _ in result["divisors"]}

            # The journal survived both processes: stats agree.
            _, stats = _request(port, "GET", "/v1/queue")
            assert stats["by_status"]["succeeded"] == 1
        finally:
            assert revived.sigterm() == 0  # clean drain on SIGTERM


class TestCleanShutdown:
    def test_sigterm_exits_zero_and_journal_replays(self, tmp_path):
        state_dir = tmp_path / "state"
        service = _Service(state_dir)
        try:
            port = service.wait_port()
            status, body = _request(
                port, "POST", "/v1/jobs",
                {"moduli": [f"{n:x}" for n in _weak_corpus(seed=9, size=3)]},
            )
            assert status == 202
            job_id = body["job_id"]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                _, job = _request(port, "GET", f"/v1/jobs/{job_id}")
                if job["status"] == "succeeded":
                    break
                time.sleep(0.05)
            assert job["status"] == "succeeded"
        finally:
            assert service.sigterm() == 0

        # A fresh process over the same state dir sees the finished job.
        revived = _Service(state_dir)
        try:
            port = revived.wait_port()
            _, job = _request(port, "GET", f"/v1/jobs/{job_id}")
            assert job["status"] == "succeeded"
            assert "result" in job
        finally:
            assert revived.sigterm() == 0
