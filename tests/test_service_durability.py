"""Durability regressions for the service persistence layer.

These pin the fixes the DUR rules demanded of real code: the job-queue
journal fsyncs every append (DUR001), ``endpoint.json`` publishes via
temp + atomic rename (DUR002), the mutation journal's commit fsyncs its
rewrite before renaming it, and the product-tree level files are fsynced
before the manifest commits to their record counts.
"""

import json
import os
import random

from repro.crypto.primes import generate_prime
from repro.faults.journal import MutationJournal
from repro.numt.incremental import ProductTreeStore
from repro.service.models import ServiceConfig
from repro.service.queue import JobQueue
from repro.service.server import ServiceServer


def _moduli(seed=7, count=3, bits=32):
    rng = random.Random(seed)
    return [
        generate_prime(bits, rng) * generate_prime(bits, rng)
        for _ in range(count)
    ]


def _record_fsyncs(monkeypatch):
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(
        os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
    )
    return synced


class TestQueueJournalFsync:
    def test_every_append_fsyncs_the_journal_descriptor(
        self, tmp_path, monkeypatch
    ):
        queue = JobQueue(tmp_path)
        synced = _record_fsyncs(monkeypatch)
        queue.submit(_moduli())
        journal_fd = queue._journal_file.fileno()
        assert journal_fd in synced

    def test_submitted_job_survives_an_unflushed_drop(self, tmp_path):
        """The journal on disk is the authority the moment submit returns."""
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_moduli())
        del queue  # no close, no terminal events — the rude shutdown
        reopened = JobQueue(tmp_path)
        assert reopened.get(job.job_id).job_id == job.job_id


class TestEndpointPublish:
    def test_endpoint_file_is_atomic_and_parseable(self, tmp_path):
        state_dir = tmp_path / "state"
        server = ServiceServer(
            JobQueue(tmp_path / "queue"),
            ServiceConfig(state_dir=str(state_dir)),
        )
        server.bound_port = 43210
        server._write_endpoint_file()
        payload = json.loads((state_dir / "endpoint.json").read_text())
        assert payload["port"] == 43210
        assert payload["pid"] == os.getpid()
        # No temp residue: the publish either happened or it didn't.
        assert [p.name for p in state_dir.iterdir()] == ["endpoint.json"]


class TestJournalCommitFsync:
    def test_commit_fsyncs_the_rewrite_before_renaming_it(
        self, tmp_path, monkeypatch
    ):
        journal = MutationJournal(tmp_path / "journal.jsonl")
        first = journal.append({"insert": 1})
        journal.append({"insert": 2})
        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (events.append("fsync"), real_fsync(fd))
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda src, dst: (events.append("replace"), real_replace(src, dst)),
        )
        journal.commit(first)
        assert "replace" in events
        assert events.index("fsync") < events.index("replace")
        assert [r["insert"] for r in journal.pending()] == [2]


class TestStoreLevelFsync:
    def test_insert_fsyncs_level_records_before_the_manifest_commits(
        self, tmp_path, monkeypatch
    ):
        store = ProductTreeStore(tmp_path / "store")
        synced = _record_fsyncs(monkeypatch)
        store.insert(_moduli(count=1)[0])
        # At least one fsync came from the level-file appends (the journal
        # and the atomic manifest/hits writes account for the rest).
        assert synced
        level_files = list((tmp_path / "store" / "nodes").glob("level-*.jsonl"))
        assert level_files
