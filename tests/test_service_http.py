"""HTTP end-to-end tests for the key-checking service.

One embedded :class:`~repro.service.ServiceApp` (real asyncio server,
real engine, real journal) per test class, driven through genuine HTTP
over a loopback socket.  The headline assertion is determinism across
entry points: the factored output served by the API is **identical** to
what the clustered engine returns for the same corpus.
"""

import http.client
import json
import random
import threading
import time

import pytest

from repro.core.clustered import ClusteredBatchGcd
from repro.crypto.primes import generate_prime
from repro.service import (
    JobQueue,
    JobResult,
    ServiceApp,
    ServiceConfig,
    ServiceWorker,
    WebhookNotifier,
)

#: Seeded weak corpus shared by the E2E assertions: moduli 0/2/5 share
#: primes, the rest are healthy.
def _weak_corpus(seed=2016, size=8, bits=40):
    rng = random.Random(seed)
    shared = generate_prime(bits, rng)
    moduli = []
    for index in range(size):
        p = shared if index in (0, 2, 5) else generate_prime(bits, rng)
        moduli.append(p * generate_prime(bits, rng))
    return moduli


CORPUS = _weak_corpus()


class _Api:
    """Minimal JSON-over-HTTP helper against the embedded app."""

    def __init__(self, port, headers=None):
        self.port = port
        self.headers = headers or {}

    def request(self, method, path, payload=None, raw_body=None, headers=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        body = raw_body if raw_body is not None else (
            None if payload is None else json.dumps(payload)
        )
        try:
            conn.request(
                method, path, body=body, headers={**self.headers, **(headers or {})}
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def wait_status(self, job_id, wanted, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, body = self.request("GET", f"/v1/jobs/{job_id}/status")
            assert status == 200, body
            if body["status"] in wanted:
                return body
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never reached {wanted}: {body}")


@pytest.fixture(scope="class")
def app(tmp_path_factory):
    state_dir = tmp_path_factory.mktemp("service-http")
    service = ServiceApp(ServiceConfig(state_dir=str(state_dir)))
    port = service.start_background()
    yield service, _Api(port)
    service.shutdown()


class TestEndToEnd:
    def test_submitted_corpus_matches_engine_exactly(self, app):
        """The service serves the same math as the library — bit for bit."""
        _, api = app
        status, body = api.request(
            "POST", "/v1/jobs", {"moduli": [f"{n:x}" for n in CORPUS]}
        )
        assert status == 202 and body["created"] is True
        job_id = body["job_id"]

        final = api.wait_status(job_id, {"succeeded"})
        assert final["attempts"] == 1
        assert final["report"]["enabled"] is True  # per-job RunReport served
        span_names = [span["name"] for span in final["report"]["spans"]]
        assert "service.job" in span_names

        status, result = api.request("GET", f"/v1/jobs/{job_id}/result")
        assert status == 200

        reference = ClusteredBatchGcd(k=4).run(CORPUS)
        expected_divisors = [
            [index, f"{reference.divisors[index]:x}"]
            for index in reference.vulnerable_indices
        ]
        expected_factored = [
            {"modulus": f"{n:x}", "p": f"{p:x}", "q": f"{q:x}"}
            for n, p, q in sorted(
                (fact.modulus, fact.p, fact.q)
                for fact in reference.resolve().values()
            )
        ]
        assert result["divisors"] == expected_divisors
        assert result["factored"] == expected_factored
        assert result["vulnerable_count"] == 3
        assert result["moduli_checked"] == len(CORPUS)

    def test_resubmission_is_idempotent_over_http(self, app):
        _, api = app
        payload = {"moduli": [f"{n:x}" for n in CORPUS]}
        status_a, first = api.request("POST", "/v1/jobs", payload)
        status_b, replay = api.request("POST", "/v1/jobs", payload)
        assert status_b == 200 and replay["created"] is False
        assert replay["job_id"] == first["job_id"]

    def test_certificates_shape_accepted(self, app):
        _, api = app
        moduli = _weak_corpus(seed=5, size=4)
        status, body = api.request(
            "POST",
            "/v1/jobs",
            {"certificates": [{"modulus": f"{n:x}"} for n in moduli]},
        )
        assert status == 202
        assert body["moduli"] == 4
        api.wait_status(body["job_id"], {"succeeded"})

    def test_healthz_and_queue_stats(self, app):
        _, api = app
        status, body = api.request("GET", "/healthz")
        assert status == 200 and body["ok"] is True
        status, stats = api.request("GET", "/v1/queue")
        assert status == 200
        assert set(stats) == {"jobs", "by_status", "paused"}

    def test_metrics_served_as_run_report(self, app):
        _, api = app
        status, report = api.request("GET", "/v1/metrics")
        assert status == 200
        assert report["enabled"] is True
        assert report["counters"]["service.http.requests"] >= 1


class TestErrorModel:
    @pytest.mark.parametrize(
        "method, path, payload, want_status, want_code",
        [
            ("POST", "/v1/jobs", {"moduli": ["zz"]}, 400, "bad_modulus"),
            ("POST", "/v1/jobs", {}, 400, "empty_submission"),
            ("GET", "/v1/jobs/job-nope", None, 404, "not_found"),
            ("GET", "/nope", None, 404, "not_found"),
            ("DELETE", "/v1/jobs", None, 405, "method_not_allowed"),
            ("POST", "/v1/jobs/job-nope/pause", None, 404, "not_found"),
        ],
    )
    def test_stable_error_codes(self, app, method, path, payload, want_status, want_code):
        _, api = app
        status, body = api.request(method, path, payload)
        assert status == want_status, body
        assert body["error"] == want_code

    def test_malformed_json_is_bad_request(self, app):
        _, api = app
        status, body = api.request("POST", "/v1/jobs", raw_body="{nope")
        assert status == 400 and body["error"] == "bad_request"

    def test_result_before_completion_is_409(self, app):
        service, api = app
        service.queue.pause_all()
        try:
            status, body = api.request(
                "POST", "/v1/jobs", {"moduli": [f"{n:x}" for n in _weak_corpus(seed=11, size=3)]}
            )
            assert status == 202
            status, error = api.request(
                "GET", f"/v1/jobs/{body['job_id']}/result"
            )
            assert status == 409 and error["error"] == "result_not_ready"
            api.request("POST", f"/v1/jobs/{body['job_id']}/cancel")
        finally:
            service.queue.resume_all()

    def test_oversized_body_is_413_and_connection_survives_logically(self, tmp_path):
        service = ServiceApp(
            ServiceConfig(state_dir=str(tmp_path), max_body_bytes=1024)
        )
        port = service.start_background()
        try:
            api = _Api(port)
            status, body = api.request(
                "POST", "/v1/jobs", {"moduli": ["ab" * 1500]}
            )
            assert status == 413 and body["error"] == "payload_too_large"
            status, _ = api.request("GET", "/healthz")
            assert status == 200  # server still serving
        finally:
            service.shutdown()


class TestLifecycleEndpoints:
    def test_pause_resume_cancel_roundtrip(self, app):
        service, api = app
        service.queue.pause_all()  # park the worker so jobs stay queued
        try:
            ids = []
            for seed in (21, 22):
                _, body = api.request(
                    "POST",
                    "/v1/jobs",
                    {"moduli": [f"{n:x}" for n in _weak_corpus(seed=seed, size=3)]},
                )
                ids.append(body["job_id"])

            status, paused = api.request("POST", f"/v1/jobs/{ids[0]}/pause")
            assert status == 200 and paused["status"] == "paused"
            status, resumed = api.request("POST", f"/v1/jobs/{ids[0]}/resume")
            assert status == 200 and resumed["status"] == "queued"
            status, cancelled = api.request("POST", f"/v1/jobs/{ids[1]}/cancel")
            assert status == 200 and cancelled["status"] == "cancelled"

            status, conflict = api.request("POST", f"/v1/jobs/{ids[1]}/pause")
            assert status == 409 and conflict["error"] == "conflict"

            status, listing = api.request("GET", "/v1/jobs")
            by_id = {row["job_id"]: row for row in listing["jobs"]}
            assert by_id[ids[1]]["status"] == "cancelled"
        finally:
            service.queue.resume_all()

    def test_queue_pause_resume_endpoints(self, app):
        _, api = app
        status, stats = api.request("POST", "/v1/queue/pause")
        assert status == 200 and stats["paused"] is True
        status, stats = api.request("POST", "/v1/queue/resume")
        assert status == 200 and stats["paused"] is False


class TestAuth:
    @pytest.fixture(scope="class")
    def auth_app(self, tmp_path_factory):
        state_dir = tmp_path_factory.mktemp("service-auth")
        service = ServiceApp(
            ServiceConfig(state_dir=str(state_dir), api_keys=("sekrit", "other"))
        )
        port = service.start_background()
        yield service, port
        service.shutdown()

    def test_v1_requires_key_healthz_does_not(self, auth_app):
        _, port = auth_app
        anonymous = _Api(port)
        status, body = anonymous.request("GET", "/v1/jobs")
        assert status == 401 and body["error"] == "unauthorized"
        status, _ = anonymous.request("GET", "/healthz")
        assert status == 200

        wrong = _Api(port, headers={"X-Api-Key": "guess"})
        status, _ = wrong.request("GET", "/v1/jobs")
        assert status == 401

        for key in ("sekrit", "other"):
            keyed = _Api(port, headers={"X-Api-Key": key})
            status, _ = keyed.request("GET", "/v1/jobs")
            assert status == 200


class TestWebhookDelivery:
    """Worker + notifier against the real queue, transport injected."""

    def _drain_one(self, tmp_path, *, transport, webhook_attempts=3, fail_job=False):
        queue = JobQueue(tmp_path, max_attempts=1)
        moduli = _weak_corpus(seed=31, size=3)

        def runner(job):
            if fail_job:
                raise RuntimeError("engine exploded")
            return (
                JobResult(divisors=(), factored=(), moduli_checked=len(job.moduli)),
                {"enabled": True},
            )

        notifier = WebhookNotifier(
            max_attempts=webhook_attempts,
            transport=transport,
            sleep=lambda seconds: None,
        )
        worker = ServiceWorker(queue, runner=runner, notifier=notifier, idle_wait=0.01)
        job, _ = queue.submit(moduli, "http://callback.test/done")
        worker.start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            current = queue.get(job.job_id)
            if current.status.is_terminal and current.webhook_state in (
                "delivered",
                "gave_up",
            ):
                break
            time.sleep(0.01)
        worker.stop()
        queue.close()
        return queue.get(job.job_id)

    def test_flaky_receiver_retries_until_delivered(self, tmp_path):
        calls = []

        def flaky(url, body):
            calls.append(json.loads(body))
            return 503 if len(calls) < 3 else 200

        job = self._drain_one(tmp_path, transport=flaky)
        assert job.webhook_state == "delivered"
        assert job.webhook_attempts == 3
        assert calls[-1]["event"] == "job.finished"
        assert calls[-1]["status"] == "succeeded"

    def test_dead_receiver_gives_up_result_still_pollable(self, tmp_path):
        def dead(url, body):
            raise OSError("connection refused")

        job = self._drain_one(tmp_path, transport=dead, webhook_attempts=2)
        assert job.webhook_state == "gave_up"
        assert job.webhook_attempts == 2
        assert job.status.value == "succeeded"
        assert job.result is not None  # giving up on delivery loses nothing

    def test_terminal_failure_also_notifies(self, tmp_path):
        payloads = []

        def capture(url, body):
            payloads.append(json.loads(body))
            return 200

        job = self._drain_one(tmp_path, transport=capture, fail_job=True)
        assert job.status.value == "failed"
        assert job.webhook_state == "delivered"
        assert payloads[0]["status"] == "failed"
        assert "engine exploded" in payloads[0]["error"]

    def test_undelivered_webhook_redelivered_after_restart(self, tmp_path):
        """Crash between completion and delivery: startup re-drives it."""
        queue = JobQueue(tmp_path)
        moduli = _weak_corpus(seed=33, size=3)
        job, _ = queue.submit(moduli, "http://callback.test/done")
        queue.claim()
        queue.complete(
            job.job_id,
            JobResult(divisors=(), factored=(), moduli_checked=len(moduli)),
        )
        queue.close()  # dies before the notifier ran

        delivered = threading.Event()
        reopened = JobQueue(tmp_path)
        notifier = WebhookNotifier(
            transport=lambda url, body: (delivered.set(), 200)[1],
            sleep=lambda seconds: None,
        )
        worker = ServiceWorker(
            reopened, runner=lambda job: None, notifier=notifier, idle_wait=0.01
        )
        worker.start()
        assert delivered.wait(10)
        worker.stop()
        assert reopened.get(job.job_id).webhook_state == "delivered"
        reopened.close()


class TestEventLoopDiscipline:
    """Regression cover for the ASY001 fixes: journal-backed queue
    mutations must run via ``asyncio.to_thread``, never on the loop."""

    def test_submit_runs_off_the_event_loop(self, app):
        service, api = app
        original = service.queue.submit
        seen_threads = []

        def spy(moduli, webhook_url=None):
            seen_threads.append(threading.current_thread().name)
            return original(moduli, webhook_url)

        service.queue.submit = spy
        try:
            status, body = api.request(
                "POST", "/v1/jobs", {"moduli": [f"{CORPUS[0]:x}"]}
            )
        finally:
            service.queue.submit = original
        assert status == 202, body
        assert seen_threads, "handler never reached JobQueue.submit"
        assert all(name != "repro-service-loop" for name in seen_threads), (
            "journal write+flush executed on the event loop thread"
        )
        api.wait_status(body["job_id"], {"succeeded", "failed"})

    def test_pause_and_resume_run_off_the_event_loop(self, app):
        service, api = app
        seen_threads = []
        originals = {
            "pause_all": service.queue.pause_all,
            "resume_all": service.queue.resume_all,
        }

        def wrap(name):
            def spy(*args, **kwargs):
                seen_threads.append(threading.current_thread().name)
                return originals[name](*args, **kwargs)

            return spy

        service.queue.pause_all = wrap("pause_all")
        service.queue.resume_all = wrap("resume_all")
        try:
            status, _ = api.request("POST", "/v1/queue/pause")
            assert status == 200
            status, _ = api.request("POST", "/v1/queue/resume")
            assert status == 200
        finally:
            service.queue.pause_all = originals["pause_all"]
            service.queue.resume_all = originals["resume_all"]
        assert len(seen_threads) == 2
        assert all(name != "repro-service-loop" for name in seen_threads)
