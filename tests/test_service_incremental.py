"""Service routing through the incremental store (``engine_mode``).

The acceptance bar from the issue: jobs served by the incremental path
must be byte-identical to a full :class:`ClusteredBatchGcd` run — the
final store state equals one clustered run over the union of all job
corpora, and each job's own result equals the classic batch GCD over the
corpus as it stood when that job ran, projected onto the job's moduli.
"""

import random

from repro.core.batchgcd import batch_gcd
from repro.core.clustered import ClusteredBatchGcd
from repro.crypto.primes import generate_prime
from repro.service.models import JobRecord, ServiceConfig
from repro.service.queue import JobQueue
from repro.service.worker import (
    INCREMENTAL_STORE_DIR,
    KeyCheckRunner,
    ServiceWorker,
)
from repro.studyconfig import StudyConfig
from repro.telemetry import Telemetry


def _moduli(seed, count, pool_size=16):
    rng = random.Random(seed)
    pool = [generate_prime(32, rng) for _ in range(pool_size)]
    out = []
    for _ in range(count):
        a, b = rng.sample(range(pool_size), 2)
        out.append(pool[a] * pool[b])
    return out


def _job(job_id, seq, moduli):
    return JobRecord(job_id=job_id, seq=seq, digest="t", moduli=list(moduli))


def _config(tmp_path, **overrides):
    return ServiceConfig(
        state_dir=str(tmp_path),
        engine_mode="incremental",
        **overrides,
    )


class TestIncrementalRouting:
    def test_small_jobs_accumulate_and_match_clustered(self, tmp_path):
        config = _config(tmp_path, incremental_max_batch=16)
        telemetry = Telemetry()
        runner = KeyCheckRunner(config, telemetry=telemetry)
        batches = [
            _moduli(1, 30),  # bulk: bootstrap via clustered run
            _moduli(2, 8),   # small: per-modulus inserts
            _moduli(3, 5),
        ]
        batches[1][2] = batches[0][7]  # cross-job duplicate must be flagged
        results = []
        for index, moduli in enumerate(batches):
            result, report = runner(_job(f"job-{index}", index, moduli))
            results.append(result)
            assert result.moduli_checked == len(moduli)
            assert report["spans"], "job telemetry must record spans"

        union = [m for moduli in batches for m in moduli]
        full = ClusteredBatchGcd(k=4).run(union)
        store = runner.open_store()
        assert store.moduli == union
        assert store.divisors() == full.divisors, "byte-identical to clustered"

        # Per-job snapshots: classic over the corpus-so-far, projected.
        offset = 0
        for index, moduli in enumerate(batches):
            reference = batch_gcd(union[: offset + len(moduli)])
            expected = tuple(
                (j, reference.divisors[offset + j])
                for j in range(len(moduli))
                if reference.divisors[offset + j] > 1
            )
            assert results[index].divisors == expected, f"job {index}"
            job_set = set(moduli)
            expected_factors = tuple(
                sorted(
                    (f.modulus, f.p, f.q)
                    for f in reference.resolve().values()
                    if f.modulus in job_set
                )
            )
            assert results[index].factored == expected_factors, f"job {index}"
            offset += len(moduli)

        counters = telemetry.report().to_dict()["counters"]
        assert counters.get("service.jobs_incremental") == 3
        # cross-job duplicate visible in job 1's result
        assert any(j == 2 for j, _ in results[1].divisors)

    def test_redelivered_job_is_idempotent(self, tmp_path):
        config = _config(tmp_path, incremental_max_batch=8)
        runner = KeyCheckRunner(config)
        moduli = _moduli(5, 6)
        first, _ = runner(_job("job-a", 0, moduli))
        again, _ = runner(_job("job-a", 0, moduli))
        assert runner.open_store().count == len(moduli)
        assert again.divisors == first.divisors
        assert again.factored == first.factored

    def test_bulk_job_reboots_store_idempotently(self, tmp_path):
        config = _config(tmp_path, incremental_max_batch=4)
        runner = KeyCheckRunner(config)
        small = _moduli(6, 3)
        bulk = _moduli(7, 12)
        runner(_job("job-s", 0, small))
        first, _ = runner(_job("job-b", 1, bulk))
        again, _ = runner(_job("job-b", 1, bulk))
        assert runner.open_store().moduli == small + bulk
        assert again.divisors == first.divisors

    def test_store_survives_runner_restart(self, tmp_path):
        config = _config(tmp_path, incremental_max_batch=32)
        moduli = _moduli(8, 10)
        KeyCheckRunner(config)(_job("job-a", 0, moduli))
        fresh = KeyCheckRunner(config)
        more = _moduli(9, 4)
        fresh(_job("job-b", 1, more))
        store = fresh.open_store()
        assert store.moduli == moduli + more
        assert (tmp_path / INCREMENTAL_STORE_DIR / "manifest.json").exists()

    def test_clustered_mode_untouched_by_default(self, tmp_path):
        config = ServiceConfig(state_dir=str(tmp_path))
        assert config.engine_mode == "clustered"
        moduli = _moduli(10, 8)
        result, _ = KeyCheckRunner(config)(_job("job-a", 0, moduli))
        reference = ClusteredBatchGcd(k=4).run(moduli)
        assert result.divisors == tuple(
            (i, reference.divisors[i]) for i in reference.vulnerable_indices
        )
        assert not (tmp_path / INCREMENTAL_STORE_DIR).exists()


class TestConfigPlumbing:
    def test_from_study_maps_engine_mode(self, tmp_path):
        study = StudyConfig.service().with_(batchgcd_engine="incremental")
        config = ServiceConfig.from_study(study, state_dir=str(tmp_path))
        assert config.engine_mode == "incremental"
        default = ServiceConfig.from_study(
            StudyConfig.service(), state_dir=str(tmp_path)
        )
        assert default.engine_mode == "clustered"

    def test_service_main_flags(self, tmp_path):
        from repro.service.__main__ import build_parser, config_from_args

        args = build_parser().parse_args(
            [
                "--state-dir", str(tmp_path),
                "--engine-mode", "incremental",
                "--incremental-max-batch", "9",
            ]
        )
        config = config_from_args(args)
        assert config.engine_mode == "incremental"
        assert config.incremental_max_batch == 9


class TestWorkerIntegration:
    def test_worker_drains_jobs_through_the_store(self, tmp_path):
        queue = JobQueue(tmp_path / "state")
        config = _config(tmp_path / "state", incremental_max_batch=64)
        telemetry = Telemetry()
        worker = ServiceWorker(queue, config=config, telemetry=telemetry)
        batches = [_moduli(11, 6), _moduli(12, 4)]
        jobs = [queue.submit(moduli)[0] for moduli in batches]
        worker.start()
        try:
            import time

            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                records = [queue.get(job.job_id) for job in jobs]
                if all(r.status.is_terminal for r in records):
                    break
                time.sleep(0.02)
        finally:
            worker.stop()
        records = [queue.get(job.job_id) for job in jobs]
        assert [r.status.value for r in records] == ["succeeded", "succeeded"]
        union = [m for moduli in batches for m in moduli]
        store = KeyCheckRunner(config).open_store()
        assert store.moduli == union
        full = ClusteredBatchGcd(k=4).run(union)
        assert store.divisors() == full.divisors
        counters = telemetry.report().to_dict()["counters"]
        assert counters.get("service.jobs_incremental") == 2
