"""The durable job queue: journal semantics, lifecycle, crash recovery.

Every guarantee `docs/SERVICE.md` makes about the queue is drilled here
against the real journal on disk — each scenario builds a queue, kills
it the rude way (drop the object without terminal events, tear the
journal tail), reopens the state dir, and asserts the replayed state.
"""

import json
import random

import pytest

from repro.crypto.primes import generate_prime
from repro.service.models import (
    WEBHOOK_DELIVERED,
    WEBHOOK_GAVE_UP,
    WEBHOOK_PENDING,
    JobResult,
    JobStatus,
    SubmissionError,
    parse_submission,
    submission_digest,
)
from repro.service.queue import InvalidTransition, JobQueue
from repro.telemetry import Telemetry


def _moduli(seed=7, count=4, bits=32):
    rng = random.Random(seed)
    return [
        generate_prime(bits, rng) * generate_prime(bits, rng)
        for _ in range(count)
    ]


def _result(moduli):
    return JobResult(divisors=(), factored=(), moduli_checked=len(moduli))


class TestSubmission:
    def test_submit_assigns_fifo_sequence_and_digest_id(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, created_first = queue.submit(_moduli(seed=1))
        second, created_second = queue.submit(_moduli(seed=2))
        assert created_first and created_second
        assert (first.seq, second.seq) == (0, 1)
        assert first.job_id.startswith("job-00000000-")
        assert first.digest == submission_digest(_moduli(seed=1), None)

    def test_duplicate_submission_is_idempotent(self, tmp_path):
        queue = JobQueue(tmp_path)
        moduli = _moduli()
        original, created = queue.submit(moduli)
        replay, created_again = queue.submit(moduli)
        assert created and not created_again
        assert replay.job_id == original.job_id
        assert queue.stats()["jobs"] == 1

    def test_same_corpus_different_webhook_is_a_new_job(self, tmp_path):
        queue = JobQueue(tmp_path)
        moduli = _moduli()
        first, _ = queue.submit(moduli)
        second, created = queue.submit(moduli, "http://callback.test/done")
        assert created and second.job_id != first.job_id

    def test_failed_duplicate_reenqueues(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=1)
        moduli = _moduli()
        job, _ = queue.submit(moduli)
        queue.claim()
        _, requeued = queue.fail(job.job_id, "boom")
        assert not requeued
        fresh, created = queue.submit(moduli)
        assert created and fresh.job_id != job.job_id
        assert fresh.status is JobStatus.QUEUED

    def test_cancelled_duplicate_reenqueues(self, tmp_path):
        queue = JobQueue(tmp_path)
        moduli = _moduli()
        job, _ = queue.submit(moduli)
        queue.cancel(job.job_id)
        fresh, created = queue.submit(moduli)
        assert created and fresh.job_id != job.job_id

    def test_empty_submission_rejected(self, tmp_path):
        queue = JobQueue(tmp_path)
        with pytest.raises(SubmissionError):
            queue.submit([])


class TestLifecycle:
    def test_claim_is_fifo(self, tmp_path):
        queue = JobQueue(tmp_path)
        ids = [queue.submit(_moduli(seed=s))[0].job_id for s in range(3)]
        claimed = [queue.claim().job_id for _ in range(3)]
        assert claimed == ids
        assert queue.claim() is None

    def test_pause_resume_keeps_original_position(self, tmp_path):
        """A resumed job runs before anything submitted after it."""
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(_moduli(seed=1))
        second, _ = queue.submit(_moduli(seed=2))
        queue.pause(first.job_id)
        assert queue.claim().job_id == second.job_id  # first is parked
        queue.resume(first.job_id)
        third, _ = queue.submit(_moduli(seed=3))
        assert queue.claim().job_id == first.job_id  # ahead of third
        assert queue.claim().job_id == third.job_id

    def test_queue_pause_gates_all_claims(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_moduli())
        queue.pause_all()
        assert queue.paused and queue.claim() is None
        queue.resume_all()
        assert queue.claim().job_id == job.job_id

    def test_fail_requeues_until_attempts_exhausted(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=3)
        job, _ = queue.submit(_moduli())
        for attempt in (1, 2):
            assert queue.claim().attempts == attempt
            _, requeued = queue.fail(job.job_id, f"boom {attempt}")
            assert requeued
        queue.claim()
        failed, requeued = queue.fail(job.job_id, "boom 3")
        assert not requeued
        assert failed.status is JobStatus.FAILED
        assert failed.error == "boom 3"

    def test_complete_records_result_and_report(self, tmp_path):
        queue = JobQueue(tmp_path)
        moduli = _moduli()
        job, _ = queue.submit(moduli)
        queue.claim()
        done = queue.complete(job.job_id, _result(moduli), {"enabled": True})
        assert done.status is JobStatus.SUCCEEDED
        assert done.result.moduli_checked == len(moduli)
        assert done.report == {"enabled": True}

    def test_invalid_transitions_raise(self, tmp_path):
        queue = JobQueue(tmp_path)
        moduli = _moduli()
        job, _ = queue.submit(moduli)
        with pytest.raises(InvalidTransition):
            queue.resume(job.job_id)  # not paused
        with pytest.raises(InvalidTransition):
            queue.complete(job.job_id, _result(moduli))  # not running
        queue.claim()
        with pytest.raises(InvalidTransition):
            queue.pause(job.job_id)  # running jobs cannot pause
        with pytest.raises(InvalidTransition):
            queue.cancel(job.job_id)  # or cancel
        queue.complete(job.job_id, _result(moduli))
        with pytest.raises(InvalidTransition):
            queue.fail(job.job_id, "late")
        with pytest.raises(KeyError):
            queue.cancel("job-zzz")

    def test_depth_gauge_tracks_runnable_jobs(self, tmp_path):
        telemetry = Telemetry()
        queue = JobQueue(tmp_path, telemetry=telemetry)
        queue.submit(_moduli(seed=1))
        queue.submit(_moduli(seed=2))
        assert telemetry.report().gauges["service.queue.depth"] == 2
        queue.claim()
        assert telemetry.report().gauges["service.queue.depth"] == 1


class TestRestartRecovery:
    """Drop the queue object (no terminal events) and replay the journal."""

    def test_replay_reconstructs_exact_state(self, tmp_path):
        queue = JobQueue(tmp_path)
        moduli = _moduli()
        done, _ = queue.submit(moduli)
        queue.claim()
        queue.complete(done.job_id, _result(moduli), {"enabled": True})
        waiting, _ = queue.submit(_moduli(seed=8))
        parked, _ = queue.submit(_moduli(seed=9))
        queue.pause(parked.job_id)
        queue.close()

        reopened = JobQueue(tmp_path)
        assert reopened.get(done.job_id).status is JobStatus.SUCCEEDED
        assert reopened.get(done.job_id).result.moduli_checked == len(moduli)
        assert reopened.get(done.job_id).report == {"enabled": True}
        assert reopened.get(waiting.job_id).status is JobStatus.QUEUED
        assert reopened.get(parked.job_id).status is JobStatus.PAUSED
        # idempotency index survives too
        _, created = reopened.submit(moduli)
        assert not created

    def test_crash_mid_claim_requeues_with_attempt_consumed(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_moduli())
        queue.claim()
        queue.close()  # process dies mid-run: claimed, never terminated

        reopened = JobQueue(tmp_path)
        recovered = reopened.get(job.job_id)
        assert recovered.status is JobStatus.QUEUED
        assert recovered.attempts == 1  # the crashed claim still counts
        assert reopened.claim().attempts == 2

    def test_crash_looping_job_fails_terminally(self, tmp_path):
        """A job that kills the process on every attempt cannot loop forever."""
        for _ in range(2):
            queue = JobQueue(tmp_path, max_attempts=2)
            queue.submit(_moduli())
            claimed = queue.claim()
            assert claimed is not None
            queue.close()
        reopened = JobQueue(tmp_path, max_attempts=2)
        job = reopened.list_jobs()[0]
        assert job.status is JobStatus.FAILED
        assert "crashed" in job.error
        assert reopened.claim() is None

    def test_torn_journal_tail_is_ignored(self, tmp_path):
        queue = JobQueue(tmp_path)
        kept, _ = queue.submit(_moduli(seed=1))
        queue.close()
        journal = tmp_path / "journal.jsonl"
        with journal.open("a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "event": "submitted", "job": "job-tr')  # kill mid-append

        reopened = JobQueue(tmp_path)
        assert [job.job_id for job in reopened.list_jobs()] == [kept.job_id]
        # and the reopened journal still appends valid lines after the tear
        fresh, created = reopened.submit(_moduli(seed=2))
        assert created
        reopened.close()
        assert JobQueue(tmp_path).get(fresh.job_id) is not None

    def test_queue_pause_flag_survives_restart(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(_moduli())
        queue.pause_all()
        queue.close()
        reopened = JobQueue(tmp_path)
        assert reopened.paused and reopened.claim() is None
        reopened.resume_all()
        assert reopened.claim() is not None


class TestWebhookBookkeeping:
    def test_pending_webhooks_are_terminal_and_undelivered(self, tmp_path):
        queue = JobQueue(tmp_path)
        moduli = _moduli()
        hooked, _ = queue.submit(moduli, "http://callback.test/done")
        queue.submit(_moduli(seed=3))  # no webhook — never pending
        assert queue.pending_webhooks() == []  # not terminal yet
        queue.claim()
        queue.complete(hooked.job_id, _result(moduli))
        assert [j.job_id for j in queue.pending_webhooks()] == [hooked.job_id]

    def test_delivery_states_journal_and_replay(self, tmp_path):
        queue = JobQueue(tmp_path)
        moduli = _moduli()
        job, _ = queue.submit(moduli, "http://callback.test/done")
        queue.claim()
        queue.complete(job.job_id, _result(moduli))
        queue.record_webhook_attempt(job.job_id, ok=False)
        queue.record_webhook_attempt(job.job_id, ok=True)
        assert queue.get(job.job_id).webhook_state == WEBHOOK_DELIVERED
        queue.close()
        replayed = JobQueue(tmp_path).get(job.job_id)
        assert replayed.webhook_state == WEBHOOK_DELIVERED
        assert replayed.webhook_attempts == 2

    def test_undelivered_webhook_survives_restart_as_pending(self, tmp_path):
        queue = JobQueue(tmp_path)
        moduli = _moduli()
        job, _ = queue.submit(moduli, "http://callback.test/done")
        queue.claim()
        queue.complete(job.job_id, _result(moduli))
        queue.record_webhook_attempt(job.job_id, ok=False)
        queue.close()  # crash before delivery succeeded or gave up
        reopened = JobQueue(tmp_path)
        assert reopened.get(job.job_id).webhook_state == WEBHOOK_PENDING
        assert [j.job_id for j in reopened.pending_webhooks()] == [job.job_id]
        reopened.record_webhook_gave_up(job.job_id)
        assert reopened.get(job.job_id).webhook_state == WEBHOOK_GAVE_UP
        assert reopened.pending_webhooks() == []


class TestSubmissionParsing:
    def test_moduli_and_certificates_combine_in_order(self):
        moduli, webhook = parse_submission(
            {
                "moduli": ["0xff1", "FF2"],
                "certificates": [{"modulus": "ff3"}],
                "webhook_url": "https://cb.test/x",
            }
        )
        assert moduli == [0xFF1, 0xFF2, 0xFF3]
        assert webhook == "https://cb.test/x"

    @pytest.mark.parametrize(
        "payload, code",
        [
            ([], "bad_request"),
            ({"moduli": "ff"}, "bad_request"),
            ({"moduli": [12]}, "bad_modulus"),
            ({"moduli": ["zz"]}, "bad_modulus"),
            ({"moduli": ["1"]}, "bad_modulus"),
            ({"moduli": ["f" * 5000]}, "bad_modulus"),
            ({"certificates": [{"subject": "CN=x"}]}, "bad_certificate"),
            ({}, "empty_submission"),
            ({"moduli": ["ff"] * 10_001}, "too_many_moduli"),
            ({"moduli": ["ff"], "webhook_url": "ftp://x"}, "bad_webhook"),
        ],
    )
    def test_rejections_carry_stable_codes(self, payload, code):
        with pytest.raises(SubmissionError) as excinfo:
            parse_submission(payload)
        assert excinfo.value.code == code

    def test_journal_lines_are_sorted_key_json(self, tmp_path):
        """Deterministic serialisation keeps journals diffable."""
        queue = JobQueue(tmp_path)
        queue.submit(_moduli())
        queue.close()
        line = (tmp_path / "journal.jsonl").read_text().splitlines()[0]
        assert line == json.dumps(json.loads(line), sort_keys=True)
