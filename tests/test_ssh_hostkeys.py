"""Tests for the SSH substrate: host keys, TOFU clients, impersonation."""

import random

import pytest

from repro.crypto import dsa
from repro.crypto.primes import generate_prime
from repro.crypto.rsa import generate_rsa_keypair, keypair_from_primes
from repro.ssh.attacker import HostImpersonator
from repro.ssh.hostkeys import (
    DsaHostKey,
    HostVerificationError,
    KnownHostsClient,
    RsaHostKey,
    SshServer,
)


@pytest.fixture(scope="module")
def rsa_server():
    keypair = generate_rsa_keypair(128, random.Random(81))
    return SshServer(host="10.0.0.1", host_key=RsaHostKey(keypair))


@pytest.fixture(scope="module")
def dsa_params():
    return dsa.generate_parameters(random.Random(82), p_bits=192, q_bits=80)


@pytest.fixture(scope="module")
def weak_dsa_server(dsa_params):
    keypair = dsa.generate_dsa_keypair(dsa_params, random.Random(83))
    # The entropy hole: the nonce is a fixed function of the boot state.
    return SshServer(
        host="10.0.0.2",
        host_key=DsaHostKey(keypair=keypair, nonce_source=0xB00715EED % dsa_params.q),
    )


class TestHostAuthentication:
    def test_first_connection_pins_key(self, rsa_server):
        client = KnownHostsClient()
        client.connect(rsa_server, random.Random(1))
        assert rsa_server.host in client.known_hosts

    def test_repeat_connection_accepted(self, rsa_server):
        client = KnownHostsClient()
        client.connect(rsa_server, random.Random(1))
        client.connect(rsa_server, random.Random(2))

    def test_changed_key_raises_warning(self, rsa_server):
        client = KnownHostsClient()
        client.connect(rsa_server, random.Random(1))
        other = generate_rsa_keypair(128, random.Random(84))
        evil = SshServer(host=rsa_server.host, host_key=RsaHostKey(other))
        with pytest.raises(HostVerificationError, match="changed"):
            client.connect(evil, random.Random(3))

    def test_dsa_host_key_verifies(self, weak_dsa_server):
        client = KnownHostsClient()
        client.connect(weak_dsa_server, random.Random(4))

    def test_invalid_proof_rejected(self, rsa_server):
        class BrokenKey(RsaHostKey):
            def sign(self, data, rng):
                return (12345,)

        broken = SshServer(
            host="10.0.0.9",
            host_key=BrokenKey(rsa_server.host_key.keypair),
        )
        with pytest.raises(HostVerificationError, match="proof invalid"):
            KnownHostsClient().connect(broken, random.Random(5))


class TestRsaImpersonation:
    def test_batchgcd_factor_enables_silent_mitm(self):
        # Two weak devices share a prime; the attacker factors and then
        # impersonates one to a client that already pinned it.
        rng = random.Random(85)
        shared = generate_prime(64, rng)
        victim_keypair = keypair_from_primes(shared, generate_prime(64, rng))
        victim = SshServer(host="fw.corp", host_key=RsaHostKey(victim_keypair))
        client = KnownHostsClient()
        client.connect(victim, random.Random(6))  # key pinned

        impostor = HostImpersonator().impersonate_rsa(victim, shared)
        # The client reconnects to the impostor without any warning.
        client.connect(impostor, random.Random(7))
        assert client.known_hosts["fw.corp"] == victim.host_key.public_blob

    def test_wrong_factor_rejected(self, rsa_server):
        with pytest.raises(ValueError):
            HostImpersonator().impersonate_rsa(rsa_server, 17)


class TestDsaImpersonation:
    def test_recorded_exchanges_leak_host_key(self, weak_dsa_server):
        client = KnownHostsClient()
        rng = random.Random(8)
        # Record two key exchanges off the wire (nonce reused by the flaw).
        nonce1, digest1, sig1 = weak_dsa_server.key_exchange(client.version, rng)
        nonce2, digest2, sig2 = weak_dsa_server.key_exchange(client.version, rng)
        assert sig1[0] == sig2[0]  # shared nonce -> shared r

        impostor = HostImpersonator().impersonate_dsa_from_signatures(
            weak_dsa_server, digest1, sig1, digest2, sig2
        )
        # A client with the victim pinned accepts the impostor silently.
        client.connect(weak_dsa_server, random.Random(9))
        client.connect(impostor, random.Random(10))

    def test_healthy_dsa_server_not_recoverable(self, dsa_params):
        keypair = dsa.generate_dsa_keypair(dsa_params, random.Random(86))
        healthy = SshServer(
            host="10.0.0.3", host_key=DsaHostKey(keypair=keypair)
        )
        rng = random.Random(11)
        _n1, digest1, sig1 = healthy.key_exchange(b"SSH-2.0-c", rng)
        _n2, digest2, sig2 = healthy.key_exchange(b"SSH-2.0-c", rng)
        assert sig1[0] != sig2[0]  # fresh nonces
        with pytest.raises(ValueError):
            HostImpersonator().impersonate_dsa_from_signatures(
                healthy, digest1, sig1, digest2, sig2
            )
