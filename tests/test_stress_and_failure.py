"""Stress and failure-injection tests across module boundaries."""

import random


from repro.core.batchgcd import batch_gcd
from repro.core.clustered import clustered_batch_gcd
from repro.crypto.primes import generate_prime
from repro.devices.models import (
    DeviceModel,
    KeygenKind,
    KeygenSpec,
    PopulationSchedule,
    SubjectStyle,
)
from repro.devices.population import IpAllocator, ModelPopulation
from repro.entropy.keygen import IbmNinePrimeProfile, WeakKeyFactory
from repro.scans.records import CertificateStore
from repro.scans.scanner import HttpsScanner
from repro.scans.sources import ScanSource
from repro.timeline import Month


class TestDegenerateCorpora:
    def test_ibm_clique_fully_resolves(self, small_openssl_table):
        # Every modulus in the 36-element clique shares BOTH of its primes
        # with other moduli (divisor == N), exercising the pairwise
        # fallback path for the entire corpus at once.
        factory = WeakKeyFactory(seed=5, prime_bits=48, openssl_table=small_openssl_table)
        profile = IbmNinePrimeProfile(profile_id="stress-ibm")
        moduli = profile.possible_moduli(factory)
        result = batch_gcd(moduli)
        assert result.vulnerable_count() == 36
        factored = result.resolve()
        assert len(factored) == 36
        primes = set()
        for fact in factored.values():
            primes.update((fact.p, fact.q))
        assert primes == set(profile.clique_primes(factory))

    def test_mixed_clique_and_entropy_hole(self, rng, small_openssl_table):
        factory = WeakKeyFactory(seed=6, prime_bits=48, openssl_table=small_openssl_table)
        profile = IbmNinePrimeProfile(profile_id="stress-mixed")
        clique = profile.possible_moduli(factory)[:10]
        shared = generate_prime(48, rng)
        hole = [shared * generate_prime(48, rng) for _ in range(5)]
        healthy = [
            generate_prime(48, rng) * generate_prime(48, rng) for _ in range(10)
        ]
        corpus = clique + hole + healthy
        result = batch_gcd(corpus)
        factored = result.resolve()
        assert set(clique) <= set(factored)
        assert set(hole) <= set(factored)
        assert not (set(healthy) & set(factored))

    def test_large_duplicate_heavy_corpus(self, rng):
        base = [generate_prime(40, rng) * generate_prime(40, rng) for _ in range(20)]
        corpus = base * 3  # every modulus appears three times
        result = batch_gcd(corpus)
        # Duplicates flag each other with divisor == N.
        assert result.vulnerable_count() == len(corpus)
        assert all(d == n for d, n in zip(result.divisors, result.moduli))

    def test_clustered_with_more_processes_than_tasks(self, rng):
        moduli = [generate_prime(40, rng) * generate_prime(40, rng) for _ in range(6)]
        result = clustered_batch_gcd(moduli, k=2, processes=8)
        assert result.divisors == [1] * 6


class TestScannerFailureModes:
    def _population(self, small_openssl_table):
        factory = WeakKeyFactory(seed=9, prime_bits=48, openssl_table=small_openssl_table)
        model = DeviceModel(
            model_id="stress-scan",
            vendor="HP",
            subject_style=SubjectStyle.VENDOR_IN_O,
            keygen=KeygenSpec(kind=KeygenKind.HEALTHY, profile_id="stress-scan"),
            schedule=PopulationSchedule(points=((Month(2012, 1), 30),)),
        )
        population = ModelPopulation(
            model=model, divisor=1, factory=factory,
            allocator=IpAllocator(random.Random(1)), rng=random.Random(2),
        )
        population.step(Month(2012, 1))
        return population

    def test_zero_coverage_scan_is_empty(self, small_openssl_table):
        population = self._population(small_openssl_table)
        store = CertificateStore()
        scanner = HttpsScanner(store, random.Random(3))
        source = ScanSource(
            name="DEAD", first=Month(2012, 1), last=Month(2012, 1), coverage=0.0
        )
        snapshot = scanner.scan(Month(2012, 1), source, [(population, False)])
        assert snapshot.host_count == 0
        assert len(store) == 0

    def test_scan_of_empty_population_list(self):
        store = CertificateStore()
        scanner = HttpsScanner(store, random.Random(3))
        source = ScanSource(
            name="T", first=Month(2012, 1), last=Month(2012, 1), coverage=1.0
        )
        snapshot = scanner.scan(Month(2012, 1), source, [])
        assert snapshot.host_count == 0

    def test_repeated_scans_intern_once(self, small_openssl_table):
        population = self._population(small_openssl_table)
        store = CertificateStore()
        scanner = HttpsScanner(store, random.Random(3))
        source = ScanSource(
            name="T", first=Month(2012, 1), last=Month(2012, 12), coverage=1.0
        )
        scanner.scan(Month(2012, 1), source, [(population, False)])
        size_after_first = len(store)
        scanner.scan(Month(2012, 2), source, [(population, False)])
        assert len(store) == size_after_first  # same certificates, no growth


class TestPopulationEdgeCases:
    def test_population_that_never_exists(self, small_openssl_table):
        factory = WeakKeyFactory(seed=10, prime_bits=48, openssl_table=small_openssl_table)
        model = DeviceModel(
            model_id="ghost",
            vendor="HP",
            subject_style=SubjectStyle.VENDOR_IN_O,
            keygen=KeygenSpec(kind=KeygenKind.HEALTHY, profile_id="ghost"),
            schedule=PopulationSchedule(points=()),
        )
        population = ModelPopulation(
            model=model, divisor=1, factory=factory,
            allocator=IpAllocator(random.Random(1)), rng=random.Random(2),
        )
        for month in Month.range(Month(2010, 7), Month(2011, 7)):
            population.step(month)
        assert population.online_count() == 0
        assert population.devices_ever() == []

    def test_heartbleed_on_empty_population(self, small_openssl_table):
        factory = WeakKeyFactory(seed=11, prime_bits=48, openssl_table=small_openssl_table)
        model = DeviceModel(
            model_id="late",
            vendor="HP",
            subject_style=SubjectStyle.VENDOR_IN_O,
            keygen=KeygenSpec(kind=KeygenKind.SHARED_PRIME, profile_id="late"),
            schedule=PopulationSchedule(points=((Month(2015, 1), 10),)),
        )
        population = ModelPopulation(
            model=model, divisor=1, factory=factory,
            allocator=IpAllocator(random.Random(1)), rng=random.Random(2),
        )
        # Stepping through Heartbleed with zero devices must not crash.
        for month in Month.range(Month(2014, 3), Month(2014, 5)):
            population.step(month)
        assert population.online_count() == 0
