"""Tests for study configuration presets."""

from repro.studyconfig import StudyConfig


class TestPresets:
    def test_full_scale(self):
        assert StudyConfig.full().scale == 1000

    def test_tiny_is_smaller_than_medium(self):
        tiny, medium = StudyConfig.tiny(), StudyConfig.medium()
        assert tiny.scale > medium.scale
        assert tiny.device_prime_bits <= medium.device_prime_bits

    def test_openssl_table_override(self):
        config = StudyConfig.tiny()
        table = config.openssl_table()
        assert table is not None
        assert len(table) == config.openssl_table_size
        assert 2 not in table

    def test_full_uses_authentic_table(self):
        assert StudyConfig.full().openssl_table() is None

    def test_with_replaces_fields(self):
        config = StudyConfig.tiny().with_(seed=42, scale=12345)
        assert config.seed == 42
        assert config.scale == 12345
        # Unrelated fields preserved.
        assert config.device_prime_bits == StudyConfig.tiny().device_prime_bits

    def test_frozen(self):
        import dataclasses
        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            StudyConfig.tiny().seed = 1
