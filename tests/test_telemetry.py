"""Unit tests for the telemetry layer itself (registry, report, schema)."""

import json

import pytest

from repro.telemetry import (
    SCHEMA_VERSION,
    FakeClock,
    RunReport,
    SpanNode,
    Telemetry,
    TimerStats,
    counter,
    gauge,
    get_telemetry,
    set_telemetry,
    span,
    timer,
    use_telemetry,
    validate_report,
)


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def telemetry(clock):
    return Telemetry(clock=clock)


class TestCountersAndGauges:
    def test_counter_accumulates(self, telemetry):
        telemetry.counter("hits")
        telemetry.counter("hits", 4)
        assert telemetry.report().counters == {"hits": 5}

    def test_gauge_last_write_wins(self, telemetry):
        telemetry.gauge("depth", 10)
        telemetry.gauge("depth", 3)
        assert telemetry.report().gauges == {"depth": 3}

    def test_float_counters(self, telemetry):
        telemetry.counter("seconds", 0.5)
        telemetry.counter("seconds", 0.25)
        assert telemetry.report().counters["seconds"] == pytest.approx(0.75)


class TestTimers:
    def test_observe_aggregates(self, telemetry):
        telemetry.observe("task", 2.0, 1.5)
        telemetry.observe("task", 4.0, 3.0)
        stats = telemetry.report().timers["task"]
        assert stats.count == 2
        assert stats.wall_seconds == pytest.approx(6.0)
        assert stats.cpu_seconds == pytest.approx(4.5)
        assert stats.min_wall_seconds == pytest.approx(2.0)
        assert stats.max_wall_seconds == pytest.approx(4.0)

    def test_timer_context_uses_clock(self, telemetry, clock):
        with telemetry.timer("step"):
            clock.advance(1.25, 0.75)
        stats = telemetry.report().timers["step"]
        assert stats.count == 1
        assert stats.wall_seconds == pytest.approx(1.25)
        assert stats.cpu_seconds == pytest.approx(0.75)

    def test_timer_merge(self):
        a = TimerStats()
        a.observe(1.0, 1.0)
        b = TimerStats()
        b.observe(3.0, 2.0)
        b.observe(0.5, 0.5)
        a.merge(b)
        assert a.count == 3
        assert a.min_wall_seconds == pytest.approx(0.5)
        assert a.max_wall_seconds == pytest.approx(3.0)
        assert a.wall_seconds == pytest.approx(4.5)


class TestSpans:
    def test_span_durations_from_clock(self, telemetry, clock):
        with telemetry.span("stage"):
            clock.advance(2.0, 1.0)
        [node] = telemetry.report().spans
        assert node.name == "stage"
        assert node.wall_seconds == pytest.approx(2.0)
        assert node.cpu_seconds == pytest.approx(1.0)

    def test_nested_spans_build_a_tree(self, telemetry, clock):
        with telemetry.span("outer"):
            clock.advance(1.0)
            with telemetry.span("outer.inner", tag="x"):
                clock.advance(2.0)
            clock.advance(1.0)
        [outer] = telemetry.report().spans
        assert outer.wall_seconds == pytest.approx(4.0)
        [inner] = outer.children
        assert inner.name == "outer.inner"
        assert inner.attrs == {"tag": "x"}
        assert inner.wall_seconds == pytest.approx(2.0)

    def test_sibling_spans_ordered(self, telemetry, clock):
        with telemetry.span("root"):
            for name in ("root.a", "root.b"):
                with telemetry.span(name):
                    clock.advance(1.0)
        [root] = telemetry.report().spans
        assert [c.name for c in root.children] == ["root.a", "root.b"]

    def test_annotate_targets_innermost(self, telemetry):
        with telemetry.span("a"), telemetry.span("a.b"):
            telemetry.annotate(bits=96)
        [a] = telemetry.report().spans
        assert a.attrs == {}
        assert a.children[0].attrs == {"bits": 96}

    def test_open_spans_excluded_from_report(self, telemetry):
        handle = telemetry.span("open")
        handle.__enter__()
        assert telemetry.report().spans == []
        handle.__exit__(None, None, None)
        assert telemetry.report().span_names() == ["open"]

    def test_walk_and_find(self):
        tree = SpanNode(
            name="a",
            children=[SpanNode(name="b", children=[SpanNode(name="c")])],
        )
        assert [n.name for n in tree.walk()] == ["a", "b", "c"]
        assert tree.find("c").name == "c"
        assert tree.find("missing") is None


class TestDisabledMode:
    def test_everything_is_a_noop(self):
        telemetry = Telemetry(enabled=False)
        telemetry.counter("hits")
        telemetry.gauge("depth", 1)
        telemetry.observe("task", 1.0)
        with telemetry.span("stage"), telemetry.timer("step"):
            pass
        report = telemetry.report()
        assert report.enabled is False
        assert report.counters == {}
        assert report.timers == {}
        assert report.spans == []

    def test_disabled_span_is_shared_and_allocation_free(self):
        telemetry = Telemetry(enabled=False)
        assert telemetry.span("a") is telemetry.span("b") is telemetry.timer("c")

    def test_default_active_registry_is_disabled(self):
        assert get_telemetry().enabled is False

    def test_merge_report_noop_when_disabled(self, telemetry):
        telemetry.counter("x")
        disabled = Telemetry(enabled=False)
        disabled.merge_report(telemetry.report())
        assert disabled.report().counters == {}


class TestActiveRegistry:
    def test_use_telemetry_restores_previous(self, telemetry):
        before = get_telemetry()
        with use_telemetry(telemetry) as active:
            assert active is telemetry
            assert get_telemetry() is telemetry
        assert get_telemetry() is before

    def test_module_level_functions_hit_active(self, telemetry, clock):
        with use_telemetry(telemetry):
            counter("hits", 2)
            gauge("depth", 7)
            with span("stage"), timer("step"):
                clock.advance(1.0)
        report = telemetry.report()
        assert report.counters == {"hits": 2}
        assert report.gauges == {"depth": 7}
        assert report.span_names() == ["stage"]
        assert report.timers["step"].count == 1

    def test_set_telemetry_none_restores_disabled(self, telemetry):
        previous = set_telemetry(telemetry)
        try:
            assert get_telemetry() is telemetry
        finally:
            set_telemetry(None)
            assert get_telemetry().enabled is False
            set_telemetry(previous)

    def test_exception_inside_use_telemetry_still_restores(self, telemetry):
        before = get_telemetry()
        with pytest.raises(RuntimeError), use_telemetry(telemetry):
            raise RuntimeError("boom")
        assert get_telemetry() is before


class TestWorkerMerge:
    def _worker_report(self, wall=1.0):
        worker = Telemetry(clock=FakeClock())
        with worker.span("batch_gcd.task", subset=0):
            worker.clock.advance(wall, wall)
        worker.counter("worker.items", 3)
        worker.observe("batch_gcd.task", wall, wall)
        return worker.report()

    def test_worker_spans_nest_under_open_parent_span(self, telemetry, clock):
        with telemetry.span("batch_gcd"):
            telemetry.merge_report(self._worker_report())
            telemetry.merge_report(self._worker_report(2.0))
        [parent] = telemetry.report().spans
        assert [c.name for c in parent.children] == [
            "batch_gcd.task", "batch_gcd.task",
        ]

    def test_worker_scalars_aggregate(self, telemetry):
        with telemetry.span("batch_gcd"):
            telemetry.merge_report(self._worker_report(1.0))
            telemetry.merge_report(self._worker_report(2.0))
        report = telemetry.report()
        assert report.counters["worker.items"] == 6
        stats = report.timers["batch_gcd.task"]
        assert stats.count == 2
        assert stats.wall_seconds == pytest.approx(3.0)

    def test_merge_without_open_span_appends_roots(self, telemetry):
        telemetry.merge_report(self._worker_report())
        assert telemetry.report().span_names() == ["batch_gcd.task"]

    def test_merge_survives_pickle_style_round_trip(self, telemetry):
        # Workers ship dicts across process boundaries, not objects.
        payload = self._worker_report().to_dict()
        wire = json.loads(json.dumps(payload))
        with telemetry.span("batch_gcd"):
            telemetry.merge_report(RunReport.from_dict(wire))
        [parent] = telemetry.report().spans
        assert parent.children[0].attrs == {"subset": 0}


class TestSerialisation:
    def _populated(self):
        telemetry = Telemetry(clock=FakeClock())
        with telemetry.span("stage", scale=1000):
            with telemetry.span("stage.sub"):
                telemetry.clock.advance(1.5, 1.0)
            telemetry.counter("records", 42)
            telemetry.gauge("depth", 2)
            telemetry.observe("task", 0.5, 0.25)
        return telemetry.report()

    def test_json_round_trip_is_lossless(self):
        report = self._populated()
        restored = RunReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()

    def test_schema_version_stamped(self):
        payload = self._populated().to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_unsupported_version_rejected(self):
        payload = self._populated().to_dict()
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version"):
            RunReport.from_dict(payload)

    def test_render_mentions_stages_and_counters(self):
        text = self._populated().render()
        assert "stage" in text
        assert "records" in text
        assert "task" in text


class TestSchemaValidation:
    def test_generated_reports_validate(self):
        telemetry = Telemetry(clock=FakeClock())
        with telemetry.span("a"):
            telemetry.counter("c")
            telemetry.observe("t", 1.0, 0.5)
        assert validate_report(telemetry.report().to_dict()) == []

    def test_non_object_rejected(self):
        assert validate_report([1, 2]) != []

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda p: p.update(schema_version=0), "schema_version"),
            (lambda p: p.update(enabled="yes"), "enabled"),
            (lambda p: p["counters"].update(bad="x"), "counters"),
            (lambda p: p.update(spans={}), "spans"),
            (lambda p: p["spans"][0].pop("name"), "name"),
            (lambda p: p["spans"][0].update(wall_seconds=-1), "wall_seconds"),
            (lambda p: p["spans"][0].update(name="a..b"), "empty segment"),
            (lambda p: p["timers"]["t"].update(count=-2), "count"),
            (lambda p: p["spans"][0]["attrs"].update(bad=[1]), "attrs"),
        ],
    )
    def test_corruption_detected(self, mutate, fragment):
        telemetry = Telemetry(clock=FakeClock())
        with telemetry.span("a"):
            telemetry.observe("t", 1.0, 0.5)
        payload = telemetry.report().to_dict()
        mutate(payload)
        problems = validate_report(payload)
        assert problems, "corruption not detected"
        assert any(fragment in problem for problem in problems)


class TestReset:
    def test_reset_clears_everything(self, telemetry, clock):
        with telemetry.span("a"):
            telemetry.counter("c")
        telemetry.reset()
        report = telemetry.report()
        assert report.counters == {} and report.spans == []
