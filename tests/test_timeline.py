"""Tests for repro.timeline: month arithmetic and study constants."""

import pytest
from hypothesis import given, strategies as st

from repro.timeline import HEARTBLEED, STUDY_END, STUDY_START, Month


class TestMonthBasics:
    def test_construction(self):
        m = Month(2014, 4)
        assert m.year == 2014
        assert m.month == 4

    @pytest.mark.parametrize("bad", [0, 13, -1, 99])
    def test_invalid_month_rejected(self, bad):
        with pytest.raises(ValueError):
            Month(2014, bad)

    def test_str_format(self):
        assert str(Month(2010, 7)) == "2010-07"
        assert str(Month(2016, 12)) == "2016-12"

    def test_parse_roundtrip(self):
        assert Month.parse("2014-04") == Month(2014, 4)
        assert Month.parse(str(Month(2011, 1))) == Month(2011, 1)

    def test_from_index_roundtrip(self):
        m = Month(2013, 11)
        assert Month.from_index(m.index) == m

    def test_first_day(self):
        assert Month(2014, 4).first_day().isoformat() == "2014-04-01"

    def test_from_date(self):
        import datetime

        assert Month.from_date(datetime.date(2012, 6, 15)) == Month(2012, 6)


class TestMonthArithmetic:
    def test_add_within_year(self):
        assert Month(2014, 1) + 3 == Month(2014, 4)

    def test_add_across_year(self):
        assert Month(2014, 11) + 3 == Month(2015, 2)

    def test_add_negative(self):
        assert Month(2014, 1) + (-1) == Month(2013, 12)

    def test_subtract_months(self):
        assert Month(2014, 4) - Month(2014, 1) == 3
        assert Month(2014, 1) - Month(2014, 4) == -3

    def test_subtract_integer(self):
        assert Month(2014, 1) - 2 == Month(2013, 11)

    def test_ordering(self):
        assert Month(2014, 4) > Month(2014, 3)
        assert Month(2013, 12) < Month(2014, 1)
        assert Month(2014, 4) == Month(2014, 4)

    def test_hashable(self):
        assert len({Month(2014, 4), Month(2014, 4), Month(2014, 5)}) == 2

    @given(
        st.integers(min_value=1900, max_value=2100),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=-500, max_value=500),
    )
    def test_add_then_subtract_is_identity(self, year, month, delta):
        m = Month(year, month)
        assert (m + delta) - m == delta

    @given(st.integers(min_value=20000, max_value=30000))
    def test_index_bijective(self, index):
        assert Month.from_index(index).index == index


class TestMonthRange:
    def test_range_inclusive(self):
        months = list(Month.range(Month(2014, 11), Month(2015, 2)))
        assert months == [
            Month(2014, 11),
            Month(2014, 12),
            Month(2015, 1),
            Month(2015, 2),
        ]

    def test_range_single(self):
        assert list(Month.range(Month(2014, 4), Month(2014, 4))) == [Month(2014, 4)]

    def test_range_empty_when_reversed(self):
        assert list(Month.range(Month(2014, 5), Month(2014, 4))) == []


class TestStudyConstants:
    def test_study_window(self):
        assert STUDY_START == Month(2010, 7)
        assert STUDY_END == Month(2016, 5)

    def test_study_span_is_nearly_six_years(self):
        assert STUDY_END - STUDY_START == 70

    def test_heartbleed_inside_window(self):
        assert STUDY_START < HEARTBLEED < STUDY_END
        assert HEARTBLEED == Month(2014, 4)
