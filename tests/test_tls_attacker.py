"""Tests for the passive eavesdropper and active MITM."""

import math
import random
from datetime import date

import pytest

from repro.core.batchgcd import batch_gcd
from repro.crypto.certs import DistinguishedName, self_signed_certificate
from repro.crypto.primes import generate_prime
from repro.crypto.rsa import keypair_from_primes
from repro.tls.attacker import ActiveMitm, PassiveEavesdropper
from repro.tls.session import HandshakeFailure, TlsClient, TlsServer, handshake
from repro.tls.suites import CipherSuite


@pytest.fixture(scope="module")
def weak_servers():
    """Two servers sharing a prime (the entropy-hole pattern)."""
    rng = random.Random(31)
    shared = generate_prime(64, rng)
    servers = []
    for i in range(2):
        q = generate_prime(64, rng)
        keypair = keypair_from_primes(shared, q)
        certificate = self_signed_certificate(
            subject=DistinguishedName(O="Acme", CN=f"fw-{i}"),
            keypair=keypair,
            serial=i,
            not_before=date(2012, 1, 1),
            not_after=date(2022, 1, 1),
        )
        servers.append(TlsServer(certificate=certificate, private_key=keypair.private))
    return servers


def factor_from_scan(servers):
    """The attacker's step: batch GCD over scanned public moduli."""
    moduli = [s.certificate.public_key.n for s in servers]
    return batch_gcd(moduli).resolve()


class TestPassiveEavesdropper:
    def test_records_then_decrypts_rsa_sessions(self, weak_servers):
        victim = weak_servers[0]
        eve = PassiveEavesdropper()
        rng = random.Random(32)
        client = TlsClient(offered=(CipherSuite.RSA,))
        session = handshake(client, victim, rng)
        session.send(b"admin:letmein")
        session.send(b"show running-config")
        eve.record(session.transcript)

        # Before factoring: nothing.
        assert not eve.can_decrypt(session.transcript)
        with pytest.raises(HandshakeFailure):
            eve.decrypt(session.transcript)

        # After batch GCD: everything.
        factored = factor_from_scan(weak_servers)
        n = victim.certificate.public_key.n
        eve.learn_factor(n, factored[n].p)
        assert eve.decrypt(session.transcript) == [
            b"admin:letmein", b"show running-config",
        ]

    def test_dhe_sessions_stay_opaque(self, weak_servers):
        victim = weak_servers[0]
        eve = PassiveEavesdropper()
        rng = random.Random(33)
        session = handshake(TlsClient(offered=(CipherSuite.DHE_RSA,)), victim, rng)
        session.send(b"secret")
        eve.record(session.transcript)
        factored = factor_from_scan(weak_servers)
        n = victim.certificate.public_key.n
        eve.learn_factor(n, factored[n].p)
        # Forward secrecy: even with the key, the recording is useless.
        assert not eve.can_decrypt(session.transcript)

    def test_decryptable_fraction(self, weak_servers):
        victim = weak_servers[0]
        eve = PassiveEavesdropper()
        rng = random.Random(34)
        for suite in (CipherSuite.RSA, CipherSuite.RSA, CipherSuite.DHE_RSA):
            session = handshake(TlsClient(offered=(suite,)), victim, rng)
            eve.record(session.transcript)
        factored = factor_from_scan(weak_servers)
        n = victim.certificate.public_key.n
        eve.learn_factor(n, factored[n].p)
        assert eve.decryptable_fraction() == pytest.approx(2 / 3)

    def test_empty_wiretap(self):
        assert PassiveEavesdropper().decryptable_fraction() == 0.0


class TestActiveMitm:
    def test_impersonation_defeats_dhe(self, weak_servers):
        victim = weak_servers[1]
        mitm = ActiveMitm()
        factored = factor_from_scan(weak_servers)
        n = victim.certificate.public_key.n
        mitm.learn_factor(n, factored[n].p)
        # A fully verifying client negotiates DHE with the impostor and
        # accepts the (genuine) certificate and (forged) signature.
        session = mitm.intercept(TlsClient(), victim, random.Random(35))
        assert session.transcript.suite is CipherSuite.DHE_RSA
        assert session.transcript.certificate == victim.certificate
        ciphertext = session.send(b"exfiltrate")
        assert ciphertext != b"exfiltrate"

    def test_cannot_impersonate_unfactored_server(self):
        rng = random.Random(36)
        p = generate_prime(64, rng)
        q = generate_prime(64, rng)
        keypair = keypair_from_primes(p, q)
        certificate = self_signed_certificate(
            subject=DistinguishedName(CN="healthy"),
            keypair=keypair,
            serial=1,
            not_before=date(2012, 1, 1),
            not_after=date(2022, 1, 1),
        )
        server = TlsServer(certificate=certificate, private_key=keypair.private)
        with pytest.raises(HandshakeFailure):
            ActiveMitm().impersonate(server)

    def test_recovered_key_is_the_real_key(self, weak_servers):
        victim = weak_servers[0]
        mitm = ActiveMitm()
        factored = factor_from_scan(weak_servers)
        n = victim.certificate.public_key.n
        mitm.learn_factor(n, factored[n].p)
        recovered = mitm.recovered_keys[n]
        assert recovered.d == victim.private_key.d
        assert math.gcd(recovered.p, victim.private_key.n) == recovered.p
