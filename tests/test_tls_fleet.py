"""Integration: simulated device fleets exposed as live TLS endpoints."""

import random

import pytest

from repro.core.batchgcd import batch_gcd
from repro.devices.catalog import models_for_vendor
from repro.devices.population import IpAllocator, ModelPopulation
from repro.entropy.keygen import WeakKeyFactory
from repro.timeline import Month
from repro.tls import (
    CipherSuite,
    HandshakeFailure,
    PassiveEavesdropper,
    TlsClient,
    handshake,
    server_for_device,
)


@pytest.fixture(scope="module")
def juniper_fleet(small_openssl_table):
    factory = WeakKeyFactory(seed=404, prime_bits=64, openssl_table=small_openssl_table)
    (model,) = models_for_vendor("Juniper")
    population = ModelPopulation(
        model=model,
        divisor=2000,
        factory=factory,
        allocator=IpAllocator(random.Random(1)),
        rng=random.Random(2),
    )
    for month in Month.range(Month(2010, 7), Month(2012, 6)):
        population.step(month)
    return population


class TestServerForDevice:
    def test_rsa_only_device(self, juniper_fleet):
        # Juniper SRX devices are modelled as RSA-kex-only.
        device = juniper_fleet.online[0]
        server = server_for_device(device)
        assert server.suites == (CipherSuite.RSA,)
        assert server.certificate is device.certificate

    def test_dhe_client_rejected_by_rsa_only_device(self, juniper_fleet):
        server = server_for_device(juniper_fleet.online[0])
        dhe_only = TlsClient(offered=(CipherSuite.DHE_RSA,))
        with pytest.raises(HandshakeFailure):
            handshake(dhe_only, server, random.Random(3))

    def test_sessions_terminate_with_device_key(self, juniper_fleet):
        server = server_for_device(juniper_fleet.online[0])
        session = handshake(TlsClient(), server, random.Random(4))
        assert session.transcript.suite is CipherSuite.RSA
        ciphertext = session.send(b"config dump")
        assert ciphertext != b"config dump"


class TestFleetWideInterception:
    def test_factored_fleet_is_passively_readable(self, juniper_fleet):
        # Scan the fleet, factor, and decrypt a session per weak device.
        moduli = sorted(
            {d.certificate.public_key.n for d in juniper_fleet.online}
        )
        factored = batch_gcd(moduli).resolve()
        assert factored, "fleet produced no collisions at this size"
        eve = PassiveEavesdropper()
        rng = random.Random(5)
        readable = 0
        for device in juniper_fleet.online:
            n = device.certificate.public_key.n
            if n not in factored:
                continue
            server = server_for_device(device)
            session = handshake(TlsClient(), server, rng)
            session.send(b"enable secret")
            eve.record(session.transcript)
            eve.learn_factor(n, factored[n].p)
            assert eve.decrypt(session.transcript) == [b"enable secret"]
            readable += 1
        assert readable == len(
            [d for d in juniper_fleet.online
             if d.certificate.public_key.n in factored]
        )
        assert eve.decryptable_fraction() == 1.0