"""Property-based tests for the TLS substrate."""

import random
from datetime import date

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.certs import DistinguishedName, self_signed_certificate
from repro.crypto.rsa import generate_rsa_keypair
from repro.tls.attacker import PassiveEavesdropper
from repro.tls.session import (
    TlsClient,
    TlsServer,
    derive_master_secret,
    handshake,
    keystream_encrypt,
)
from repro.tls.suites import CipherSuite


@pytest.fixture(scope="module")
def server():
    keypair = generate_rsa_keypair(128, random.Random(71))
    certificate = self_signed_certificate(
        subject=DistinguishedName(CN="prop-server"),
        keypair=keypair,
        serial=1,
        not_before=date(2012, 1, 1),
        not_after=date(2022, 1, 1),
    )
    return TlsServer(certificate=certificate, private_key=keypair.private)


class TestKeystreamProperties:
    @given(st.binary(max_size=200), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=60)
    def test_roundtrip(self, plaintext, sequence):
        master = b"k" * 32
        ciphertext = keystream_encrypt(master, sequence, plaintext)
        assert keystream_encrypt(master, sequence, ciphertext) == plaintext
        if len(plaintext) >= 8:
            # A single keystream byte can legitimately be 0x00 (XOR then
            # fixes that byte), so "encryption changed the bytes" is only
            # a sound property once the keystream would need a zero run.
            assert ciphertext != plaintext

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=30)
    def test_different_masters_differ(self, plaintext):
        a = keystream_encrypt(b"a" * 32, 0, plaintext)
        b = keystream_encrypt(b"b" * 32, 0, plaintext)
        assert a != b

    @given(st.integers(min_value=2, max_value=2**64), st.binary(min_size=32, max_size=32),
           st.binary(min_size=32, max_size=32))
    @settings(max_examples=30)
    def test_master_secret_sensitivity(self, premaster, cr, sr):
        base = derive_master_secret(premaster, cr, sr)
        assert derive_master_secret(premaster + 1, cr, sr) != base
        assert len(base) == 32


class TestHandshakeProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_rsa_session_always_decryptable_by_keyholder(self, server, seed):
        rng = random.Random(seed)
        session = handshake(TlsClient(offered=(CipherSuite.RSA,)), server, rng)
        payload = f"payload-{seed}".encode()
        session.send(payload)
        eve = PassiveEavesdropper()
        eve.record(session.transcript)
        eve.recovered_keys[server.certificate.public_key.n] = server.private_key
        assert eve.decrypt(session.transcript) == [payload]

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_dhe_signature_always_verifies(self, server, seed):
        rng = random.Random(seed)
        session = handshake(TlsClient(offered=(CipherSuite.DHE_RSA,)), server, rng)
        t = session.transcript
        assert server.certificate.public_key.verify(
            t.signed_dhe_blob(), t.dhe_signature
        )
