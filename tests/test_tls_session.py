"""Tests for the mini-TLS handshake and record protection."""

import random
from datetime import date

import pytest

from repro.crypto.certs import DistinguishedName, self_signed_certificate
from repro.crypto.rsa import generate_rsa_keypair
from repro.scans.rimon import RimonInterceptor
from repro.tls.session import (
    HandshakeFailure,
    TlsClient,
    TlsServer,
    derive_master_secret,
    handshake,
    keystream_encrypt,
)
from repro.tls.suites import CipherSuite


@pytest.fixture(scope="module")
def server():
    keypair = generate_rsa_keypair(128, random.Random(21))
    certificate = self_signed_certificate(
        subject=DistinguishedName(O="Acme", CN="fw-1"),
        keypair=keypair,
        serial=1,
        not_before=date(2012, 1, 1),
        not_after=date(2022, 1, 1),
    )
    return TlsServer(certificate=certificate, private_key=keypair.private)


class TestSuiteNegotiation:
    def test_client_preference_wins(self, server):
        session = handshake(TlsClient(), server, random.Random(1))
        assert session.transcript.suite is CipherSuite.DHE_RSA

    def test_rsa_only_server(self, server):
        rsa_only = TlsServer(
            certificate=server.certificate,
            private_key=server.private_key,
            suites=(CipherSuite.RSA,),
        )
        session = handshake(TlsClient(), rsa_only, random.Random(1))
        assert session.transcript.suite is CipherSuite.RSA

    def test_no_common_suite(self, server):
        dhe_only_client = TlsClient(offered=(CipherSuite.DHE_RSA,))
        rsa_only = TlsServer(
            certificate=server.certificate,
            private_key=server.private_key,
            suites=(CipherSuite.RSA,),
        )
        with pytest.raises(HandshakeFailure):
            handshake(dhe_only_client, rsa_only, random.Random(1))

    def test_forward_secrecy_flag(self):
        assert CipherSuite.DHE_RSA.forward_secret
        assert not CipherSuite.RSA.forward_secret


class TestHandshakeTranscripts:
    def test_rsa_transcript_fields(self, server):
        client = TlsClient(offered=(CipherSuite.RSA,))
        session = handshake(client, server, random.Random(2))
        t = session.transcript
        assert t.rsa_encrypted_premaster is not None
        assert t.dhe_params is None
        assert len(t.client_random) == 32

    def test_dhe_transcript_signed(self, server):
        client = TlsClient(offered=(CipherSuite.DHE_RSA,))
        session = handshake(client, server, random.Random(3))
        t = session.transcript
        assert t.dhe_params is not None
        assert server.certificate.public_key.verify(
            t.signed_dhe_blob(), t.dhe_signature
        )

    def test_substituted_certificate_rejected(self, server):
        # A Rimon-style key-swapped certificate fails client verification.
        interceptor = RimonInterceptor(random.Random(4), key_bits=128)
        swapped = interceptor.intercept(server.certificate)
        bogus = TlsServer(
            certificate=swapped, private_key=interceptor.keypair.private
        )
        with pytest.raises(HandshakeFailure):
            handshake(TlsClient(), bogus, random.Random(5))

    def test_unverifying_client_accepts_substitution(self, server):
        interceptor = RimonInterceptor(random.Random(4), key_bits=128)
        swapped = interceptor.intercept(server.certificate)
        bogus = TlsServer(
            certificate=swapped, private_key=interceptor.keypair.private
        )
        lax = TlsClient(verify_certificate=False)
        session = handshake(lax, bogus, random.Random(5))
        assert session.transcript.certificate.public_key.n == interceptor.modulus

    def test_server_without_key_fails(self, server):
        keyless = TlsServer(certificate=server.certificate, private_key=None)
        with pytest.raises(HandshakeFailure):
            handshake(TlsClient(), keyless, random.Random(6))


class TestRecordProtection:
    def test_keystream_roundtrip(self):
        master = b"m" * 32
        ciphertext = keystream_encrypt(master, 0, b"hello world")
        assert keystream_encrypt(master, 0, ciphertext) == b"hello world"

    def test_sequence_separates_records(self):
        master = b"m" * 32
        assert keystream_encrypt(master, 0, b"aaaa") != keystream_encrypt(
            master, 1, b"aaaa"
        )

    def test_session_records_appended(self, server):
        session = handshake(TlsClient(), server, random.Random(7))
        c1 = session.send(b"GET /admin")
        c2 = session.send(b"password=hunter2")
        assert session.transcript.records == [c1, c2]
        assert c1 != b"GET /admin"

    def test_master_secret_derivation_deterministic(self):
        a = derive_master_secret(12345, b"c" * 32, b"s" * 32)
        b = derive_master_secret(12345, b"c" * 32, b"s" * 32)
        assert a == b
        assert derive_master_secret(12346, b"c" * 32, b"s" * 32) != a
